"""Fixed-seed parity goldens: engine-ported drivers vs the
pre-refactor closure loops.

Each test re-implements the *pre-engine* driver computation inline
(one ``sampler.sample`` per replicate, batch estimators on the full
trace) and asserts the ported driver reproduces it at ``procs=None``
on the list backend — bit-identically where the computation is
identical float-op-for-float-op, and to <= 1e-12 where a streaming
accumulator replaced a batch estimator.

The ``TestProcsInvariance`` suite is the other half of the
contract: representative drivers of every family (error figure,
budget sweep, sample paths, group densities, tables, ablations) run
at ``procs=1`` and ``procs=SPAWN_PROCS`` (real spawn workers; CI's
smoke leg raises the count to 4 via ``REPRO_SHARD_PROCS``, and its
thread leg swaps the fan-out vehicle via ``REPRO_EXECUTOR=thread``)
and must agree exactly.

``TestExecutorTorture`` is the executor half: a Hypothesis property
walks executor in {inline, thread, spawn} x procs in {1, 2, 4} x
advance-chunking for every pool-capable sampler family and asserts
byte-identical trace fingerprints and accumulator states against the
inline reference, plus a ``REPRO_NO_NATIVE`` leg exercising the
``executor="auto"`` fallback (pure-Python kernels cannot release the
GIL, so auto must pick spawn there).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.estimators.streaming import StreamingDegreePMF
from repro.experiments import ablations, figures, tables
from repro.experiments.degree_errors import (
    _estimate,
    degree_error_experiment,
)
from repro.generators.ba import barabasi_albert
from repro.graph.csr import get_csr
from repro.metrics.errors import nmse_curve
from repro.metrics.exact import true_degree_ccdf
from repro.sampling import (
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    RandomEdgeSampler,
    RandomVertexSampler,
    ShardedSessionPool,
    SingleRandomWalk,
)
from repro.sampling import _native
from repro.sampling.base import walk_steps
from repro.sampling.sharded import resolve_executor, threads_can_scale
from repro.util.rng import child_rng

#: Worker count for the real-spawn tests (CI's smoke leg sets 4).
SPAWN_PROCS = int(os.environ.get("REPRO_SHARD_PROCS", "2"))
#: Fan-out vehicle for the parallel side of the invariance tests
#: (CI's thread smoke leg sets "thread"; default keeps legacy spawn).
EXECUTOR = os.environ.get("REPRO_EXECUTOR") or None

SCALE = 0.05
RUNS = 3
DIMENSION = 10


def assert_curves_close(new, ref, tol=0.0):
    assert set(new) == set(ref)
    for key in ref:
        assert abs(new[key] - ref[key]) <= tol, (key, new[key], ref[key])


class TestDegreeErrorParity:
    def test_experiment_matches_pre_refactor_loop(self):
        """The engine path is bit-identical to the historical
        closure loop on the list backend, sampler family by family."""
        graph = barabasi_albert(500, 2, rng=0)
        samplers = {
            "FS": FrontierSampler(DIMENSION),
            "SingleRW": SingleRandomWalk(),
            "MRW": MultipleRandomWalk(DIMENSION),
            "RV": RandomVertexSampler(0.5),
            "RE": RandomEdgeSampler(0.5),
        }
        budget, runs, seed = 300, 5, 11
        truth = true_degree_ccdf(graph)
        reference = {}
        for method_index, (method, sampler) in enumerate(
            sorted(samplers.items())
        ):
            estimates = []
            for run_index in range(runs):
                rng = child_rng(seed + 7919 * method_index, run_index)
                trace = sampler.sample(graph, budget, rng)
                try:
                    estimates.append(_estimate(graph, trace, "ccdf", None))
                except ValueError:
                    estimates.append({})
            reference[method] = nmse_curve(estimates, truth)
        result = degree_error_experiment(
            graph, samplers, budget, runs, root_seed=seed, metric="ccdf"
        )
        for method in reference:
            assert_curves_close(result.curves[method], reference[method])

    def test_fig_budget_sweeps_walk_once(self):
        """fig4/8/12 with a budget schedule: one session per
        replicate, advanced to the final budget only — the
        acceptance-criteria step-count assertion."""
        for fig, _dimension_is_frontier in (
            (figures.fig4, True),
            (figures.fig8, True),
            (figures.fig12, True),
        ):
            sweep = fig(
                scale=SCALE, runs=RUNS, dimension=DIMENSION, budgets=3
            )
            budgets = sweep.budgets
            assert len(budgets) == 3
            fs_method = f"FS(m={DIMENSION})"
            final_steps = walk_steps(budgets[-1], DIMENSION, 1.0)
            assert sweep.steps_walked[fs_method] == RUNS * final_steps
            resampled = RUNS * sum(
                walk_steps(b, DIMENSION, 1.0) for b in budgets
            )
            assert sweep.steps_walked[fs_method] < resampled

    def test_fig_sweep_final_point_matches_single_budget_figure(self):
        """The sweep's last checkpoint reproduces the plain figure for
        the chunk-invisible samplers.

        MultipleRW is the documented exception (its walkers share one
        stream walker-by-walker, so checkpoint boundaries change the
        draw interleaving — same law, different stream); FS and
        SingleRW must agree to float-summation noise.
        """
        single = figures.fig4(scale=SCALE, runs=RUNS, dimension=DIMENSION)
        sweep = figures.fig4(
            scale=SCALE,
            runs=RUNS,
            dimension=DIMENSION,
            budgets=[single.budget / 2, single.budget],
        )
        final = sweep.at(single.budget)
        for method in single.curves:
            if method.startswith("MultipleRW"):
                continue
            assert_curves_close(
                final.curves[method], single.curves[method], tol=1e-12
            )

    def test_fig12_sweep_attaches_analytic_overlays_per_budget(self):
        sweep = figures.fig12(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, budgets=2
        )
        for budget in sweep.budgets:
            assert "analytic RV (eq.4)" in sweep.at(budget).curves
            assert "analytic RE (eq.3)" in sweep.at(budget).curves


class TestTableParity:
    def test_table2_matches_pre_refactor_loop(self):
        from repro.datasets.registry import gab
        from repro.estimators.assortativity import assortativity_from_trace
        from repro.metrics.errors import nmse, relative_bias
        from repro.metrics.exact import true_undirected_assortativity

        dataset = gab(SCALE)
        graph = dataset.graph
        truth = true_undirected_assortativity(graph)
        budget = max(4 * DIMENSION, int(graph.num_vertices * 0.1))
        samplers = {
            "FS": FrontierSampler(DIMENSION),
            "MultipleRW": MultipleRandomWalk(DIMENSION),
            "SingleRW": SingleRandomWalk(),
        }
        reference_bias, reference_error = {}, {}
        for method, sampler in samplers.items():
            estimates = []
            for run_index in range(RUNS):
                rng = child_rng(2, run_index)  # dataset_index 0
                trace = sampler.sample(graph, budget, rng)
                estimates.append(assortativity_from_trace(graph, trace))
            reference_bias[method] = relative_bias(estimates, truth)
            reference_error[method] = nmse(estimates, truth)
        result = tables.table2(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, datasets=[dataset]
        )
        row = result.rows[0]
        for method in samplers:
            assert row.bias[method] == reference_bias[method]
            assert row.error[method] == reference_error[method]

    def test_table3_matches_pre_refactor_loop(self):
        from repro.datasets.registry import flickr_like
        from repro.estimators.clustering import global_clustering_from_trace
        from repro.metrics.errors import nmse
        from repro.metrics.exact import true_global_clustering

        dataset = flickr_like(SCALE)
        graph = dataset.graph
        truth = true_global_clustering(graph)
        budget = max(4 * DIMENSION, int(graph.num_vertices * 0.1))
        samplers = {
            "FS": FrontierSampler(DIMENSION),
            "MultipleRW": MultipleRandomWalk(DIMENSION),
            "SingleRW": SingleRandomWalk(),
        }
        reference_mean, reference_error = {}, {}
        for method, sampler in samplers.items():
            estimates = []
            for run_index in range(RUNS):
                rng = child_rng(3, run_index)
                trace = sampler.sample(graph, budget, rng)
                estimates.append(global_clustering_from_trace(graph, trace))
            reference_mean[method] = sum(estimates) / len(estimates)
            reference_error[method] = nmse(estimates, truth)
        result = tables.table3(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, datasets=[dataset]
        )
        row = result.rows[0]
        for method in samplers:
            assert row.mean_estimate[method] == reference_mean[method]
            assert row.error[method] == reference_error[method]

    def test_table4_matches_walk_trace_final_edge_gap(self):
        from repro.experiments.tables import _table4_graphs
        from repro.graph.components import largest_connected_component
        from repro.markov.transient import walk_trace_final_edge_gap

        graph_size, walkers, mc_runs, seed = 40, 4, 300, 4
        result = tables.table4(
            graph_size=graph_size,
            num_walkers=walkers,
            mc_runs=mc_runs,
            root_seed=seed,
        )
        graphs = _table4_graphs(graph_size, seed + 97)
        samplers = {
            "FS": FrontierSampler(walkers),
            "MRW": MultipleRandomWalk(walkers),
            "SRW": SingleRandomWalk(),
        }
        budgets = {
            "internet-rlt-mini": 3 * walkers,
            "youtube-mini": 2 * walkers,
            "hepth-mini": 2 * walkers,
        }
        for row in result.rows:
            lcc, _ = largest_connected_component(graphs[row.graph_name])
            for method_index, (method, sampler) in enumerate(
                samplers.items()
            ):
                reference = walk_trace_final_edge_gap(
                    lcc,
                    sampler,
                    budgets[row.graph_name],
                    runs=mc_runs,
                    root_seed=seed + 31 * method_index,
                )
                assert row.gaps[method] == reference


class TestAblationParity:
    def test_metropolis_vs_rw_matches_pre_refactor_loop(self):
        from repro.estimators.degree import (
            degree_pmf_from_trace,
            degree_pmf_from_vertices,
        )
        from repro.graph.components import largest_connected_component
        from repro.datasets.registry import flickr_like
        from repro.metrics.errors import nmse
        from repro.metrics.exact import true_degree_pmf
        from repro.sampling.metropolis import MetropolisHastingsWalk

        scale, runs, seed = 0.1, 4, 903
        dataset = flickr_like(scale)
        lcc, _ = largest_connected_component(dataset.graph)
        budget = lcc.num_vertices / 2.5
        truth = true_degree_pmf(lcc)
        probe = [
            k
            for k, v in sorted(truth.items(), key=lambda kv: -kv[1])[:8]
            if v > 0
        ]
        rw_estimates = {k: [] for k in probe}
        mh_estimates = {k: [] for k in probe}
        rw, mh = SingleRandomWalk(), MetropolisHastingsWalk()
        for run in range(runs):
            rw_trace = rw.sample(lcc, budget, child_rng(seed, run))
            rw_pmf = degree_pmf_from_trace(lcc, rw_trace)
            mh_trace = mh.sample(lcc, budget, child_rng(seed + 1, run))
            mh_pmf = degree_pmf_from_vertices(mh_trace.visited, lcc.degree)
            for k in probe:
                rw_estimates[k].append(rw_pmf.get(k, 0.0))
                mh_estimates[k].append(mh_pmf.get(k, 0.0))
        reference_rw = sum(
            nmse(rw_estimates[k], truth[k]) for k in probe
        ) / len(probe)
        reference_mh = sum(
            nmse(mh_estimates[k], truth[k]) for k in probe
        ) / len(probe)
        sweep = ablations.metropolis_vs_rw(
            scale=scale, runs=runs, root_seed=seed
        )
        assert sweep.errors["RW + eq.(7)"] == reference_rw
        assert sweep.errors["Metropolis-Hastings"] == reference_mh

    def test_burn_in_matches_pre_refactor_loop(self):
        """Old driver re-walked an identical trace per burn-in level;
        the engine walks once and scores every level — same numbers."""
        from repro.datasets.registry import gab
        from repro.estimators.degree import degree_ccdf_from_trace
        from repro.sampling.burnin import discard_burn_in

        scale, runs, seed = 0.1, 4, 905
        burn_ins = (0, 20)
        dataset = gab(scale)
        graph = dataset.graph
        budget = graph.num_vertices / 2.5
        truth = true_degree_ccdf(graph)

        def mean_cnmse(estimates):
            curve = nmse_curve(estimates, truth)
            return sum(curve.values()) / len(curve)

        single = SingleRandomWalk()
        reference = {}
        for burn in burn_ins:
            estimates = []
            for run in range(runs):
                trace = single.sample(graph, budget, child_rng(seed, run))
                burned = discard_burn_in(trace, burn)
                try:
                    estimates.append(degree_ccdf_from_trace(graph, burned))
                except ValueError:
                    estimates.append({})
            reference[f"SingleRW(burn-in={burn})"] = mean_cnmse(estimates)
        fs = FrontierSampler(64)
        estimates = [
            degree_ccdf_from_trace(
                graph, fs.sample(graph, budget, child_rng(seed + 1, run))
            )
            for run in range(runs)
        ]
        reference["FS(m=64, no burn-in)"] = mean_cnmse(estimates)
        sweep = ablations.burn_in_ablation(
            scale=scale, runs=runs, burn_ins=burn_ins, root_seed=seed
        )
        for name, value in reference.items():
            assert sweep.errors[name] == value


class TestProcsInvariance:
    """procs=1 == procs=SPAWN_PROCS, driver family by driver family.

    Real spawn workers on one side; the inline pooled path on the
    other.  Scales are tiny — the point is stream identity, not
    statistics.
    """

    def test_error_figure(self):
        a = figures.fig10(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, procs=1
        )
        b = figures.fig10(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, procs=SPAWN_PROCS,
            executor=EXECUTOR,
        )
        assert a.curves == b.curves

    def test_budget_sweep_figure(self):
        a = figures.fig4(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, budgets=2, procs=1
        )
        b = figures.fig4(
            scale=SCALE,
            runs=RUNS,
            dimension=DIMENSION,
            budgets=2,
            procs=SPAWN_PROCS,
            executor=EXECUTOR,
        )
        assert a.steps_walked == b.steps_walked
        for budget in a.budgets:
            assert a.at(budget).curves == b.at(budget).curves

    def test_sample_paths_figure(self):
        a = figures.fig9(
            scale=SCALE, dimension=DIMENSION, num_paths=2, procs=1
        )
        b = figures.fig9(
            scale=SCALE, dimension=DIMENSION, num_paths=2, procs=SPAWN_PROCS,
            executor=EXECUTOR,
        )
        assert a.paths == b.paths

    def test_group_density_figure(self):
        a = figures.fig14(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, procs=1
        )
        b = figures.fig14(
            scale=SCALE, runs=RUNS, dimension=DIMENSION, procs=SPAWN_PROCS,
            executor=EXECUTOR,
        )
        assert a.curves == b.curves

    def test_table(self):
        from repro.datasets.registry import gab

        a = tables.table3(
            scale=SCALE,
            runs=RUNS,
            dimension=DIMENSION,
            datasets=[gab(SCALE)],
            procs=1,
        )
        b = tables.table3(
            scale=SCALE,
            runs=RUNS,
            dimension=DIMENSION,
            datasets=[gab(SCALE)],
            procs=SPAWN_PROCS,
            executor=EXECUTOR,
        )
        assert a.rows[0].mean_estimate == b.rows[0].mean_estimate
        assert a.rows[0].error == b.rows[0].error

    def test_monte_carlo_table(self):
        a = tables.table4(
            graph_size=40, num_walkers=4, mc_runs=200, procs=1
        )
        b = tables.table4(
            graph_size=40, num_walkers=4, mc_runs=200, procs=SPAWN_PROCS,
            executor=EXECUTOR,
        )
        for row_a, row_b in zip(a.rows, b.rows):
            assert row_a.gaps == row_b.gaps

    def test_ablation_with_list_only_sampler(self):
        """DFS replicates in-process under procs; FS fans out —
        results must still be procs-invariant end to end."""
        a = ablations.fs_vs_distributed(
            scale=0.1, runs=RUNS, dimension=8, procs=1
        )
        b = ablations.fs_vs_distributed(
            scale=0.1, runs=RUNS, dimension=8, procs=SPAWN_PROCS,
            executor=EXECUTOR,
        )
        assert a.errors == b.errors


@pytest.mark.parametrize("fig", [figures.fig4, figures.fig8, figures.fig12])
def test_budget_sweep_render_and_structure(fig):
    sweep = fig(scale=SCALE, runs=RUNS, dimension=DIMENSION, budgets=2)
    assert len(sweep.budgets) == 2
    text = sweep.render()
    assert "budget" in text


# ----------------------------------------------------------------------
# executor torture: inline x thread x spawn x procs x chunking
# ----------------------------------------------------------------------
#: One shared graph for the whole torture matrix (the pools below are
#: keyed on (procs, executor) and cached for the session, so spawn
#: startup is paid once, not per Hypothesis example).
_TORTURE_GRAPH = None
_TORTURE_POOLS = {}


def _torture_graph():
    global _TORTURE_GRAPH
    if _TORTURE_GRAPH is None:
        _TORTURE_GRAPH = get_csr(barabasi_albert(600, 3, rng=19))
    return _TORTURE_GRAPH


def _torture_pool(procs, executor):
    key = (procs, executor)
    if key not in _TORTURE_POOLS:
        _TORTURE_POOLS[key] = ShardedSessionPool(
            _torture_graph(), procs=procs, executor=executor
        )
    return _TORTURE_POOLS[key]


@atexit.register
def _close_torture_pools():
    for pool in _TORTURE_POOLS.values():
        pool.close()
    _TORTURE_POOLS.clear()


def rows_fingerprint(rows):
    """A byte-exact digest of anytime rows: every trace increment's
    arrays plus the final step counts.  Two executors agree iff their
    fingerprints agree."""
    digest = hashlib.sha256()
    for increments, steps in rows:
        digest.update(int(steps).to_bytes(8, "little", signed=True))
        for trace in increments:
            for name in ("step_sources", "step_targets", "step_walkers",
                         "visited_array"):
                part = getattr(trace, name, None)
                if part is None:
                    continue
                digest.update(name.encode())
                digest.update(np.ascontiguousarray(part).tobytes())
    return digest.hexdigest()


def accumulator_state(graph, rows):
    """Replicate-ordered streaming-PMF estimates accumulated from the
    rows' trace increments — the engine-side state the snapshots see."""
    states = []
    for increments, _steps in rows:
        accumulator = StreamingDegreePMF(graph)
        for trace in increments:
            accumulator.update(trace)
        states.append(accumulator.estimate())
    return states


#: The pool-capable sampler families (what `_POOL_SAFE_TYPES` admits).
TORTURE_SAMPLERS = {
    "SRW": lambda: SingleRandomWalk(),
    "MHRW": lambda: MetropolisHastingsWalk(),
    "MultipleRW": lambda: MultipleRandomWalk(4),
    "FS": lambda: FrontierSampler(6),
}


@st.composite
def chunk_schedules(draw):
    """An ascending steps-schedule — the advance-chunking axis.  The
    same schedule is pinned on both sides, so even MultipleRW (whose
    stream is documented chunk-boundary-sensitive) must agree."""
    count = draw(st.integers(min_value=1, max_value=4))
    sizes = draw(
        st.lists(
            st.integers(min_value=20, max_value=120),
            min_size=count,
            max_size=count,
        )
    )
    marks, total = [], 0
    for size in sizes:
        total += size
        marks.append(float(total))
    return marks


class TestExecutorTorture:
    """Byte-identical rows for every executor, worker count, sampler
    family and advance-chunking — the determinism contract the thread
    backend ships under."""

    @given(
        sampler_key=st.sampled_from(sorted(TORTURE_SAMPLERS)),
        executor=st.sampled_from(["inline", "thread", "spawn"]),
        procs=st.sampled_from([1, 2, 4]),
        marks=chunk_schedules(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_rows_bit_identical_across_executors(
        self, sampler_key, executor, procs, marks, seed
    ):
        graph = _torture_graph()
        sampler = TORTURE_SAMPLERS[sampler_key]()
        if executor == "inline":
            procs = 1
        pool = _torture_pool(procs, None if executor == "inline" else executor)
        rows = list(
            pool.run_anytime(
                sampler, marks, 3, root_seed=seed, schedule="steps"
            )
        )
        reference_pool = _torture_pool(1, None)
        reference = list(
            reference_pool.run_anytime(
                sampler, marks, 3, root_seed=seed, schedule="steps"
            )
        )
        assert rows_fingerprint(rows) == rows_fingerprint(reference)
        assert accumulator_state(graph, rows) == accumulator_state(
            graph, reference
        )

    def test_auto_resolves_to_thread_with_native(self):
        if not _native.available():
            pytest.skip("native kernels unavailable on this host")
        assert threads_can_scale()
        assert resolve_executor("auto") == "thread"

    def test_auto_falls_back_to_spawn_without_native(self, monkeypatch):
        """The documented heuristic: pure-Python kernels hold the GIL,
        so auto must not pick threads when native is unavailable
        (unless the interpreter itself is free-threaded)."""
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        gil_check = getattr(sys, "_is_gil_enabled", None)
        if gil_check is not None and not gil_check():
            assert resolve_executor("auto") == "thread"
        else:
            assert not threads_can_scale()
            assert resolve_executor("auto") == "spawn"

    def test_auto_fallback_rows_match_inline_without_native(
        self, monkeypatch
    ):
        """executor="auto" under REPRO_NO_NATIVE runs real spawn
        workers (which inherit the env) and still reproduces the
        inline rows byte for byte."""
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        graph = _torture_graph()
        sampler = FrontierSampler(6)
        marks = [40.0, 90.0]
        with ShardedSessionPool(graph, procs=2, executor="auto") as pool:
            assert pool.executor == resolve_executor("auto")
            rows = list(
                pool.run_anytime(
                    sampler, marks, 2, root_seed=5, schedule="steps"
                )
            )
        with ShardedSessionPool(graph, procs=1) as pool:
            reference = list(
                pool.run_anytime(
                    sampler, marks, 2, root_seed=5, schedule="steps"
                )
            )
        assert rows_fingerprint(rows) == rows_fingerprint(reference)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            resolve_executor("fork")
        with pytest.raises(ValueError, match="executor"):
            ShardedSessionPool(_torture_graph(), procs=2, executor="fork")

    def test_run_plan_executor_requires_procs(self):
        from repro.experiments.engine import ExperimentPlan, run_plan

        plan = ExperimentPlan(
            title="executor validation",
            graph=_torture_graph(),
            samplers={"FS": FrontierSampler(4)},
            budgets=[50.0],
        )
        with pytest.raises(ValueError, match="procs"):
            run_plan(plan, 1, executor="thread")
        with pytest.raises(ValueError, match="executor"):
            run_plan(plan, 1, procs=2, executor="fork")
