"""Tests for Cartesian powers G^m (Lemma 5.1's state space)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.classic import complete_graph, path_graph
from repro.graph.cartesian import (
    cartesian_power,
    decode_state,
    encode_state,
    state_degree,
)


class TestEncoding:
    def test_round_trip(self):
        assert decode_state(encode_state((2, 0, 1), 3), 3, 3) == (2, 0, 1)

    def test_encode_out_of_range(self):
        with pytest.raises(ValueError):
            encode_state((3,), 3)

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            decode_state(9, 3, 2)

    def test_ordering(self):
        # (0, 0) -> 0, (0, 1) -> 1, (1, 0) -> n
        assert encode_state((0, 0), 4) == 0
        assert encode_state((0, 1), 4) == 1
        assert encode_state((1, 0), 4) == 4


class TestCartesianPower:
    def test_m1_is_original(self, house):
        power = cartesian_power(house, 1)
        assert power.num_vertices == house.num_vertices
        assert sorted(power.edges()) == sorted(house.edges())

    def test_m_must_be_positive(self, triangle):
        with pytest.raises(ValueError):
            cartesian_power(triangle, 0)

    def test_state_cap(self, triangle):
        with pytest.raises(ValueError):
            cartesian_power(triangle, 20, max_states=100)

    def test_edge_count_formula(self, paw):
        """|E^m| = m |V|^(m-1) |E| (stated in the Theorem 5.2 proof)."""
        for m in (1, 2, 3):
            power = cartesian_power(paw, m)
            expected = m * paw.num_vertices ** (m - 1) * paw.num_edges
            assert power.num_edges == expected

    def test_state_degrees_are_coordinate_sums(self, paw):
        power = cartesian_power(paw, 2)
        n = paw.num_vertices
        for code in range(power.num_vertices):
            state = decode_state(code, n, 2)
            assert power.degree(code) == state_degree(paw, state)

    def test_adjacency_differs_in_one_coordinate(self, triangle):
        power = cartesian_power(triangle, 2)
        n = triangle.num_vertices
        for code_a, code_b in power.edges():
            a = decode_state(code_a, n, 2)
            b = decode_state(code_b, n, 2)
            diffs = [i for i in range(2) if a[i] != b[i]]
            assert len(diffs) == 1
            i = diffs[0]
            assert triangle.has_edge(a[i], b[i])

    def test_path_squared_is_grid(self):
        """P2 x P2 = 2x2 lattice (classic Cartesian product identity)."""
        path = path_graph(2)
        power = cartesian_power(path, 2)
        assert power.num_vertices == 4
        assert power.num_edges == 4  # the 4-cycle


@given(
    n=st.integers(min_value=2, max_value=5),
    m=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_complete_graph_power_edge_count(n, m):
    graph = complete_graph(n)
    power = cartesian_power(graph, m)
    assert power.num_vertices == n**m
    assert power.num_edges == m * n ** (m - 1) * graph.num_edges
