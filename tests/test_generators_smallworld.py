"""Tests for Watts–Strogatz small-world graphs."""

import pytest

from repro.generators.smallworld import watts_strogatz
from repro.metrics.exact import true_global_clustering


class TestValidation:
    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(20, 3, 0.1)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(6, 6, 0.1)

    def test_invalid_prob_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(20, 4, 1.5)


class TestStructure:
    def test_zero_rewiring_is_ring_lattice(self):
        graph = watts_strogatz(20, 4, 0.0)
        assert all(graph.degree(v) == 4 for v in graph.vertices())
        assert graph.num_edges == 40
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)

    def test_rewired_edge_count_bounded(self):
        graph = watts_strogatz(50, 4, 0.3, rng=0)
        assert graph.num_edges <= 100
        assert graph.num_edges >= 80  # few rewirings fail outright

    def test_full_rewiring_still_valid(self):
        graph = watts_strogatz(40, 4, 1.0, rng=1)
        for u, v in graph.edges():
            assert u != v

    def test_deterministic(self):
        a = watts_strogatz(30, 4, 0.2, rng=9)
        b = watts_strogatz(30, 4, 0.2, rng=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_lattice_clustering_high(self):
        """The k=4 ring lattice has clustering 0.5 by construction."""
        graph = watts_strogatz(60, 4, 0.0)
        assert true_global_clustering(graph) == pytest.approx(0.5, abs=0.01)

    def test_rewiring_lowers_clustering(self):
        lattice = watts_strogatz(200, 6, 0.0)
        rewired = watts_strogatz(200, 6, 0.9, rng=2)
        assert true_global_clustering(rewired) < true_global_clustering(
            lattice
        )
