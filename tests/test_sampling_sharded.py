"""Multi-process frontier sharding: determinism, parity, accounting.

The contract under test (see ``sampling/sharded.py``):

- per-walker spawn-key RNG streams make the merged trace a pure
  function of ``(seed, graph, event_block)`` — invariant to shard
  count, to inline-vs-spawn execution, to worker scheduling, and to
  how ``advance`` calls were chunked (hypothesis-checked);
- the engine runs the identical draw protocol with and without the
  native kernels (the CI ``REPRO_NO_NATIVE=1`` leg re-runs this whole
  file on the pure-Python fallback);
- budget accounting (``spent()``) agrees with ``FrontierSampler`` and
  ``DistributedFrontierSampler`` for any ``seed_cost``, including 0;
- checkpoints resume bit-identically, twice, from the same file;
- :class:`ShardedSessionPool` reproduces in-process replication bit
  for bit, just fanned out across spawn workers.

The real-spawn tests default to 2 worker processes; CI's 4-proc smoke
leg sets ``REPRO_SHARD_PROCS=4`` to cover a wider pool under spawn
start-method semantics (what macOS/Windows use by default), and its
thread leg sets ``REPRO_EXECUTOR=thread`` to re-run the same parity
checks with the fan-out on a thread pool over the in-process graph
(no spill, no pickling — same traces).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.ba import barabasi_albert
from repro.graph.csr import get_csr
from repro.graph.io import load_csr_npy, save_csr_npy
from repro.sampling import (
    DistributedFrontierSampler,
    FrontierSampler,
    MetropolisHastingsWalk,
    MultipleRandomWalk,
    ShardedFrontierSampler,
    ShardedSessionPool,
    SingleRandomWalk,
    load_session,
)
from repro.sampling import _native
from repro.util.rng import child_rng

#: Worker count for the real-spawn tests (CI's smoke leg sets 4).
SPAWN_PROCS = int(os.environ.get("REPRO_SHARD_PROCS", "2"))
#: Executor override for the fan-out tests (CI's thread leg sets
#: "thread"); None keeps the legacy spawn default.
EXECUTOR = os.environ.get("REPRO_EXECUTOR") or None


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(300, 2, rng=5)


@pytest.fixture(scope="module")
def csr(graph):
    return get_csr(graph)


def inline_sampler(dimension=6, procs=1, **kwargs):
    return ShardedFrontierSampler(
        dimension, procs=procs, use_processes=False, **kwargs
    )


def assert_traces_equal(a, b):
    assert (a.step_sources == b.step_sources).all()
    assert (a.step_targets == b.step_targets).all()
    assert (a.step_walkers == b.step_walkers).all()
    assert (a.step_times == b.step_times).all()
    assert a.initial_vertices == b.initial_vertices


class TestMergedTraceContract:
    def test_trace_is_time_ordered_and_walker_consistent(self, graph):
        trace = inline_sampler(6).sample(graph, 200, rng=7)
        assert trace.num_steps == 200 - 6
        assert np.all(np.diff(trace.step_times) >= 0)
        assert trace.step_walkers.min() >= 0
        assert trace.step_walkers.max() < 6
        # Each walker's subsequence is a contiguous walk from its seed.
        position = dict(enumerate(trace.initial_vertices))
        for w, u, v in zip(
            trace.step_walkers.tolist(),
            trace.step_sources.tolist(),
            trace.step_targets.tolist(),
        ):
            assert position[w] == u
            position[w] = v

    def test_every_walker_index_jumps_eventually(self, graph):
        trace = inline_sampler(4).sample(graph, 400, rng=3)
        assert set(trace.step_walkers.tolist()) == {0, 1, 2, 3}

    def test_invalid_procs_rejected(self, graph):
        with pytest.raises(ValueError, match="procs"):
            ShardedFrontierSampler(4, procs=0)
        with pytest.raises(ValueError, match="procs"):
            ShardedSessionPool(graph, procs=0)
        with pytest.raises(ValueError, match="event_block"):
            ShardedFrontierSampler(4, event_block=0)

    def test_pinned_seeds_and_dimension_check(self, graph):
        sampler = inline_sampler(3)
        trace = sampler.sample_from(graph, [5, 9, 11], 40, rng=1)
        assert trace.initial_vertices == [5, 9, 11]
        with pytest.raises(ValueError):
            sampler.start(graph, rng=1, initial_vertices=[5, 9])

    def test_isolated_pinned_seed_rejected(self):
        lonely = barabasi_albert(50, 2, rng=1)
        lonely.add_vertex()
        isolated = lonely.num_vertices - 1
        with pytest.raises(ValueError, match="isolated"):
            inline_sampler(2).start(
                lonely, rng=1, initial_vertices=[0, isolated]
            )


class TestDeterminism:
    def test_shard_count_invariance_inline(self, graph):
        reference = inline_sampler(6, procs=1).sample(graph, 250, rng=11)
        for shards in (2, 3, 5, 8):
            other = inline_sampler(6, procs=shards).sample(graph, 250, rng=11)
            assert_traces_equal(reference, other)

    def test_repeated_runs_bit_identical(self, graph):
        a = inline_sampler(5, procs=2).sample(graph, 200, rng=21)
        b = inline_sampler(5, procs=2).sample(graph, 200, rng=21)
        assert_traces_equal(a, b)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        dimension=st.integers(1, 8),
        steps=st.integers(1, 80),
        shards=st.integers(2, 5),
        split=st.integers(1, 79),
    )
    def test_shard_count_and_chunking_invariance(
        self, seed, dimension, steps, shards, split
    ):
        """Shard-count 1 vs k and any advance chunking: identical merges."""
        graph = _hypothesis_graph()
        one = inline_sampler(dimension, procs=1)
        sharded = inline_sampler(dimension, procs=shards)
        with one.start(graph, rng=seed) as session:
            session.advance(steps)
            reference = session.trace()
        with sharded.start(graph, rng=seed) as session:
            first = min(steps, 1 + split % steps)
            session.advance(first)
            session.advance(steps - first)
            chunked = session.trace()
        assert_traces_equal(reference, chunked)

    @pytest.mark.skipif(
        not _native.available(), reason="no native kernels to compare"
    )
    def test_native_and_fallback_kernels_agree(self, csr):
        fast = ShardedFrontierSampler(
            4, procs=1, use_processes=False, native=True
        ).sample(csr, 150, rng=13)
        slow = ShardedFrontierSampler(
            4, procs=1, use_processes=False, native=False
        ).sample(csr, 150, rng=13)
        assert_traces_equal(fast, slow)

    def test_mmap_graph_matches_in_memory(self, graph, csr, tmp_path):
        save_csr_npy(csr, tmp_path / "g")
        mapped = load_csr_npy(tmp_path / "g", mmap=True)
        assert mapped.mmap_stem is not None
        in_memory = inline_sampler(4).sample(csr, 150, rng=5)
        via_mmap = inline_sampler(4).sample(mapped, 150, rng=5)
        assert_traces_equal(in_memory, via_mmap)


class TestSpawnPool:
    def test_spawn_pool_matches_inline(self, graph):
        """Real worker processes over the temp-spilled mmap'd graph."""
        pooled_sampler = ShardedFrontierSampler(
            6, procs=SPAWN_PROCS, executor=EXECUTOR
        )
        with pooled_sampler.start(graph, rng=7) as session:
            session.advance_budget(220)
            pooled = session.trace()
            spill = session._spill_dir
            if session.executor == "spawn":
                # The graph was spilled for sharing; close() cleans up.
                assert spill is not None and spill.exists()
            else:
                # Threads read the in-process CSR: nothing to spill.
                assert spill is None
        assert spill is None or not spill.exists()
        inline = inline_sampler(6, procs=SPAWN_PROCS).start(graph, rng=7)
        inline.advance_budget(220)
        assert_traces_equal(pooled, inline.trace())
        inline.close()

    def test_spawn_pool_reuses_file_backed_graph(self, csr, tmp_path):
        save_csr_npy(csr, tmp_path / "g")
        mapped = load_csr_npy(tmp_path / "g", mmap=True)
        with ShardedFrontierSampler(
            4, procs=SPAWN_PROCS, executor=EXECUTOR
        ).start(mapped, rng=3) as session:
            session.advance(100)
            assert session._spill_dir is None  # shared in place
            pooled = session.trace()
        assert_traces_equal(
            pooled, inline_sampler(4).sample_from(
                csr, pooled.initial_vertices, 100, rng=3
            ),
        )


class TestBudgetParity:
    @pytest.mark.parametrize("seed_cost", [0.0, 0.5, 1.0, 2.5])
    def test_spent_agrees_across_fs_realizations(self, graph, seed_cost):
        """Satellite: seed_cost budget accounting parity (incl. 0)."""
        budget = 150
        dimension = 6
        sessions = [
            FrontierSampler(dimension, seed_cost=seed_cost).start(
                graph, rng=7
            ),
            FrontierSampler(
                dimension, seed_cost=seed_cost, backend="csr"
            ).start(graph, rng=7),
            DistributedFrontierSampler(dimension, seed_cost=seed_cost).start(
                graph, rng=7
            ),
            inline_sampler(dimension, seed_cost=seed_cost).start(graph, rng=7),
        ]
        expected_steps = max(0, int(budget - dimension * seed_cost))
        for session in sessions:
            session.advance_budget(budget)
            assert session.steps_taken == expected_steps, session
            assert session.spent() == pytest.approx(
                seed_cost * dimension + expected_steps
            ), session
            trace = session.trace()
            assert trace.spent() == pytest.approx(session.spent()), session
            closer = getattr(session, "close", None)
            if closer:
                closer()

    def test_budget_below_seed_cost_takes_no_steps(self, graph):
        session = inline_sampler(6, seed_cost=2.0).start(graph, rng=1)
        session.advance_budget(11)  # 6 seeds cost 12 > 11
        assert session.steps_taken == 0
        assert session.spent() == pytest.approx(12.0)
        session.close()


class TestCheckpointResume:
    def test_resume_matches_uninterrupted(self, graph, tmp_path):
        sampler = inline_sampler(6)
        interrupted = sampler.start(graph, rng=7)
        interrupted.advance(60)
        path = tmp_path / "sharded.ckpt"
        interrupted.save(path)
        interrupted.close()
        resumed = load_session(path, graph)
        resumed.advance(90)
        full = sampler.start(graph, rng=7)
        full.advance(150)
        assert_traces_equal(resumed.trace(), full.trace())
        resumed.close()
        full.close()

    def test_resume_same_checkpoint_twice_is_identical(self, graph, tmp_path):
        """Satellite: two resumes of one file must not alias."""
        session = inline_sampler(5).start(graph, rng=19)
        session.advance(40)
        path = tmp_path / "sharded.ckpt"
        session.save(path)
        session.close()
        first = load_session(path, graph)
        second = load_session(path, graph)
        first.advance(70)  # fully drive one before touching the other
        second.advance(70)
        assert_traces_equal(first.trace(), second.trace())
        first.close()
        second.close()


class TestDistributionalParityWithDFS:
    def test_degree_biased_mean_matches_distributed_fs(self, graph):
        """The merged edge sequence is FS-lawful: sampled-vertex degree
        statistics agree with ``DistributedFrontierSampler`` (the
        list-backend realization of the same Theorem 5.5 process)
        across replicated fixed-seed runs."""
        degrees = np.asarray(graph.degrees(), dtype=np.float64)

        def biased_mean(traces):
            visited = np.concatenate(
                [np.asarray(t.visited_vertices, dtype=np.int64) for t in traces]
            )
            return float(degrees[visited].mean())

        sharded = [
            inline_sampler(6).sample(graph, 300, rng=child_rng(1, run))
            for run in range(15)
        ]
        distributed = [
            DistributedFrontierSampler(6).sample(
                graph, 300, rng=child_rng(2, run)
            )
            for run in range(15)
        ]
        a, b = biased_mean(sharded), biased_mean(distributed)
        assert a == pytest.approx(b, rel=0.08), (a, b)


class TestSessionPool:
    @pytest.mark.parametrize(
        "sampler",
        [
            SingleRandomWalk(),
            MetropolisHastingsWalk(),
            MultipleRandomWalk(4),
            FrontierSampler(4),
        ],
        ids=lambda s: type(s).__name__,
    )
    def test_inline_pool_matches_in_process_sampling(
        self, graph, csr, sampler
    ):
        with ShardedSessionPool(graph, procs=1) as pool:
            traces = pool.run(sampler, 120, runs=3, root_seed=9)
        for index, trace in enumerate(traces):
            reference = sampler.sample(csr, 120, rng=child_rng(9, index))
            assert trace.edges == reference.edges
            assert trace.initial_vertices == reference.initial_vertices
            assert trace.spent() == pytest.approx(reference.spent())

    def test_spawn_pool_matches_inline_pool(self, graph):
        sampler = FrontierSampler(4)
        with ShardedSessionPool(graph, procs=1) as pool:
            inline = pool.run(sampler, 120, runs=4, root_seed=9)
        with ShardedSessionPool(
            graph, procs=SPAWN_PROCS, executor=EXECUTOR
        ) as pool:
            pooled = pool.run(sampler, 120, runs=4, root_seed=9)
        for a, b in zip(inline, pooled):
            assert a.edges == b.edges
            assert a.initial_vertices == b.initial_vertices

    def test_rejects_list_only_distributed_sampler(self, graph):
        with ShardedSessionPool(graph, procs=1) as pool:
            with pytest.raises(TypeError, match="ShardedFrontierSampler"):
                pool.run(DistributedFrontierSampler(4), 100, runs=1)

    def test_rejects_nested_sharded_sampler(self, graph):
        """A sharded sampler inside the pool would nest Pools inside
        daemonic workers; refuse up front with a pointer to procs=."""
        with ShardedSessionPool(graph, procs=1) as pool:
            with pytest.raises(TypeError, match="procs"):
                pool.run(ShardedFrontierSampler(4), 100, runs=1)

    def test_rejects_bad_runs(self, graph):
        with ShardedSessionPool(graph, procs=1) as pool:
            with pytest.raises(ValueError):
                pool.run(SingleRandomWalk(), 100, runs=0)

    def test_replicate_traces_procs_invariant(self, graph):
        from repro.experiments.runner import replicate_traces

        sampler = SingleRandomWalk()
        serial = replicate_traces(sampler, graph, 100, runs=3, root_seed=4)
        fanned = replicate_traces(
            sampler, graph, 100, runs=3, root_seed=4,
            procs=SPAWN_PROCS, executor=EXECUTOR,
        )
        for a, b in zip(serial, fanned):
            assert a.edges == b.edges


_HYPOTHESIS_GRAPH = None


def _hypothesis_graph():
    global _HYPOTHESIS_GRAPH
    if _HYPOTHESIS_GRAPH is None:
        _HYPOTHESIS_GRAPH = barabasi_albert(120, 2, rng=3)
    return _HYPOTHESIS_GRAPH
