"""Tests for burn-in handling."""

import pytest

from repro.sampling.burnin import discard_burn_in, effective_sample_count
from repro.sampling.frontier import FrontierSampler
from repro.sampling.multiple import MultipleRandomWalk
from repro.sampling.single import SingleRandomWalk


class TestDiscardBurnIn:
    def test_zero_is_identity(self, house):
        trace = SingleRandomWalk().sample(house, 50, rng=0)
        assert discard_burn_in(trace, 0) is trace

    def test_negative_rejected(self, house):
        trace = SingleRandomWalk().sample(house, 50, rng=0)
        with pytest.raises(ValueError):
            discard_burn_in(trace, -1)

    def test_single_walker_prefix_dropped(self, house):
        trace = SingleRandomWalk().sample(house, 50, rng=1)
        burned = discard_burn_in(trace, 10)
        assert burned.edges == trace.edges[10:]
        assert burned.num_steps == trace.num_steps - 10

    def test_original_untouched(self, house):
        trace = SingleRandomWalk().sample(house, 50, rng=2)
        before = list(trace.edges)
        discard_burn_in(trace, 10)
        assert trace.edges == before

    def test_budget_still_reflects_full_spend(self, house):
        trace = SingleRandomWalk().sample(house, 50, rng=3)
        burned = discard_burn_in(trace, 10)
        assert burned.budget == trace.budget

    def test_multi_walker_proportional(self, house):
        trace = MultipleRandomWalk(4).sample(house, 100, rng=4)
        burned = discard_burn_in(trace, 40)
        per_walker_burn = 10
        for original, kept in zip(trace.per_walker, burned.per_walker):
            assert kept == original[per_walker_burn:]
        assert len(burned.edges) == sum(len(e) for e in burned.per_walker)

    def test_fs_trace_supported(self, house):
        trace = FrontierSampler(4).sample(house, 100, rng=5)
        burned = discard_burn_in(trace, 40)
        assert burned.walker_indices is None
        assert burned.num_steps < trace.num_steps

    def test_burn_longer_than_trace(self, house):
        trace = SingleRandomWalk().sample(house, 20, rng=6)
        burned = discard_burn_in(trace, 100)
        assert burned.edges == []


class TestEffectiveSampleCount:
    def test_basic(self, house):
        trace = SingleRandomWalk().sample(house, 50, rng=7)
        assert effective_sample_count(trace, 10) == trace.num_steps - 10

    def test_floor_at_zero(self, house):
        trace = SingleRandomWalk().sample(house, 20, rng=8)
        assert effective_sample_count(trace, 1000) == 0
