"""Tests for the Table 1 summary."""

import pytest

from repro.graph.graph import Graph
from repro.graph.summary import GraphSummary, summarize


class TestSummarize:
    def test_connected_graph(self, paw):
        summary = summarize(paw, name="paw")
        assert summary.name == "paw"
        assert summary.num_vertices == 4
        assert summary.lcc_size == 4
        assert summary.num_edges == 4
        assert summary.average_degree == pytest.approx(2.0)
        assert summary.wmax == pytest.approx(1.5)  # max 3 / avg 2
        assert summary.num_components == 1

    def test_disconnected(self, two_triangles):
        summary = summarize(two_triangles)
        assert summary.lcc_size == 3
        assert summary.num_components == 2

    def test_directed_reports_directed_edge_count(self, small_digraph):
        summary = summarize(small_digraph, name="d")
        assert summary.num_edges == small_digraph.num_edges
        # But degrees/LCC come from the symmetric closure.
        assert summary.num_vertices == 5
        assert summary.lcc_size == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(Graph())

    def test_render_row_contains_fields(self, paw):
        summary = summarize(paw, name="paw")
        row = summary.as_row()
        assert "paw" in row
        assert "4" in row

    def test_header_and_row_align(self, paw):
        header = GraphSummary.header()
        assert "Graph" in header
        assert "wmax" in header
