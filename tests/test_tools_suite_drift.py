"""The suite drift gate must fail loudly — naming the offending cell
with its baseline, current and ratio — and never with a traceback."""

from __future__ import annotations

import copy
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_suite_drift.py"


def run_tool(*args):
    return subprocess.run(
        [sys.executable, str(TOOL), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def report_document(nrmse: float = 0.12) -> dict:
    return {
        "schema": 1,
        "suite": "unit",
        "description": "",
        "seed": 7,
        "scenarios": {
            "ba-n60": {
                "id": "ba-n60",
                "graph": {
                    "family": "ba",
                    "size": 60,
                    "kwargs": {},
                    "seed": 42,
                    "num_vertices": 60,
                    "num_edges": 116,
                    "average_degree": 3.87,
                },
                "seed": 123,
                "replicates": 2,
                "budgets": [50.0, 100.0],
                "estimators": ["average_degree"],
                "methods": {
                    "fs": {
                        "50": {
                            "average_degree": {
                                "nrmse": nrmse * 2,
                                "bias": -0.01,
                            }
                        },
                        "100": {
                            "average_degree": {
                                "nrmse": nrmse,
                                "bias": 0.005,
                            }
                        },
                    }
                },
            }
        },
    }


def write(path: Path, document: dict) -> Path:
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


class TestReadableErrors:
    def test_missing_current_report(self, tmp_path):
        result = run_tool("--current", str(tmp_path / "report.json"))
        assert result.returncode == 1
        assert "not found" in result.stderr
        assert "repro suite run" in result.stderr  # tells you the fix
        assert "Traceback" not in result.stderr + result.stdout

    def test_corrupt_current_report(self, tmp_path):
        bad = tmp_path / "report.json"
        bad.write_text("{not json", encoding="utf-8")
        result = run_tool("--current", str(bad))
        assert result.returncode == 1
        assert "unreadable" in result.stderr
        assert "Traceback" not in result.stderr

    def test_missing_baseline_points_at_update(self, tmp_path):
        current = write(tmp_path / "report.json", report_document())
        result = run_tool(
            "--current",
            str(current),
            "--baseline",
            str(tmp_path / "missing.json"),
        )
        assert result.returncode == 1
        assert "baseline" in result.stderr
        assert "--update" in result.stderr

    def test_suite_mismatch_is_an_error(self, tmp_path):
        current = write(tmp_path / "report.json", report_document())
        other = report_document()
        other["suite"] = "other"
        baseline = write(tmp_path / "baseline.json", other)
        result = run_tool(
            "--current", str(current), "--baseline", str(baseline)
        )
        assert result.returncode == 1
        assert "suite mismatch" in result.stderr


class TestDriftGate:
    def test_update_then_pass_then_injected_regression(self, tmp_path):
        current = write(tmp_path / "report.json", report_document())
        baseline = tmp_path / "baseline.json"
        updated = run_tool(
            "--current", str(current), "--baseline", str(baseline), "--update"
        )
        assert updated.returncode == 0, updated.stderr
        assert baseline.exists()

        ok = run_tool("--current", str(current), "--baseline", str(baseline))
        assert ok.returncode == 0, ok.stderr
        assert "OK" in ok.stdout

        # Inject a 10x error regression on one cell: the gate must
        # fail and name the cell with baseline, current and ratio.
        regressed = report_document()
        cell = regressed["scenarios"]["ba-n60"]["methods"]["fs"]["100"]
        cell["average_degree"]["nrmse"] *= 10
        bad = write(tmp_path / "bad.json", regressed)
        failed = run_tool(
            "--current", str(bad), "--baseline", str(baseline)
        )
        assert failed.returncode == 1
        assert "REGRESSED" in failed.stdout
        key = "ba-n60/fs/B100/average_degree.nrmse"
        assert key in failed.stderr  # offending key...
        assert "0.1200" in failed.stderr  # ...baseline...
        assert "1.2000" in failed.stderr  # ...current...
        assert "10.00x" in failed.stderr  # ...and ratio

    def test_improvement_and_new_cells_pass(self, tmp_path):
        baseline = write(tmp_path / "baseline.json", report_document())
        improved = report_document(nrmse=0.06)
        improved["scenarios"]["ba-n60"]["methods"]["srw"] = copy.deepcopy(
            improved["scenarios"]["ba-n60"]["methods"]["fs"]
        )
        current = write(tmp_path / "report.json", improved)
        result = run_tool(
            "--current", str(current), "--baseline", str(baseline)
        )
        assert result.returncode == 0, result.stderr
        assert "new" in result.stdout  # srw cells reported, not failed

    def test_tolerance_is_configurable(self, tmp_path):
        baseline = write(tmp_path / "baseline.json", report_document())
        slightly = write(
            tmp_path / "report.json", report_document(nrmse=0.13)
        )
        strict = run_tool(
            "--current",
            str(slightly),
            "--baseline",
            str(baseline),
            "--rel-tol",
            "0.01",
        )
        assert strict.returncode == 1
        loose = run_tool(
            "--current", str(slightly), "--baseline", str(baseline)
        )
        assert loose.returncode == 0

    def test_committed_smoke_baseline_is_self_consistent(self):
        """The committed baseline must pass the gate against itself."""
        committed = REPO_ROOT / "suites" / "baselines" / "smoke.json"
        result = run_tool("--current", str(committed))
        assert result.returncode == 0, result.stderr + result.stdout
