"""Tests for the dataset registry."""

import pytest

from repro.datasets.registry import (
    DATASET_BUILDERS,
    flickr_like,
    gab,
    hepth_like,
    internet_rlt_like,
    livejournal_like,
    load,
    youtube_like,
)
from repro.graph.components import connected_components


class TestRegistry:
    def test_all_builders_listed(self):
        assert set(DATASET_BUILDERS) == {
            "flickr-like",
            "livejournal-like",
            "youtube-like",
            "internet-rlt-like",
            "hepth-like",
            "gab",
        }

    def test_load_unknown_rejected(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_load_dispatches(self):
        dataset = load("gab", scale=0.1)
        assert dataset.name == "gab"

    def test_load_deterministic(self):
        a = load("hepth-like", scale=0.2)
        b = load("hepth-like", scale=0.2)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_load_seed_override_changes_graph(self):
        a = load("hepth-like", scale=0.2)
        b = load("hepth-like", scale=0.2, seed=999)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())


class TestFlickrLike:
    def test_structure(self):
        dataset = flickr_like(scale=0.1)
        summary = dataset.summary()
        assert summary.num_vertices >= 600
        # dominant LCC but visibly disconnected (the paper's Flickr)
        assert 0.85 < summary.lcc_size / summary.num_vertices < 0.99
        assert summary.num_components > 3

    def test_groups_present(self):
        dataset = flickr_like(scale=0.1)
        assert dataset.labels.all_labels()

    def test_degree_labels(self):
        dataset = flickr_like(scale=0.1)
        v = 0
        assert dataset.in_degree_of(v) == dataset.digraph.in_degree(v)
        assert dataset.out_degree_of(v) == dataset.digraph.out_degree(v)

    def test_heavy_tail(self):
        dataset = flickr_like(scale=0.3)
        graph = dataset.graph
        assert graph.max_degree() > 4 * graph.average_degree()


class TestOtherDatasets:
    def test_livejournal_denser_and_connected(self):
        dataset = livejournal_like(scale=0.1)
        summary = dataset.summary()
        assert summary.lcc_size / summary.num_vertices > 0.95
        flickr = flickr_like(scale=0.1).summary()
        assert summary.average_degree > flickr.average_degree

    def test_youtube_sparser(self):
        youtube = youtube_like(scale=0.1).summary()
        livejournal = livejournal_like(scale=0.1).summary()
        assert youtube.average_degree < livejournal.average_degree

    def test_internet_rlt_low_degree(self):
        dataset = internet_rlt_like(scale=0.1)
        summary = dataset.summary()
        assert summary.average_degree == pytest.approx(3.2, abs=0.6)
        assert summary.num_components == 1
        assert dataset.digraph is None

    def test_hepth_small(self):
        dataset = hepth_like(scale=0.2)
        assert dataset.graph.num_vertices <= 1000

    def test_degree_label_fallback_for_undirected(self):
        dataset = gab(scale=0.1)
        assert dataset.in_degree_of(0) == dataset.graph.degree(0)


class TestGab:
    def test_construction(self):
        dataset = gab(scale=0.1)
        graph = dataset.graph
        components = connected_components(graph)
        assert len(components) == 1  # joined by the bridge
        n = graph.num_vertices
        half = n // 2
        sparse_volume = graph.volume(range(half))
        dense_volume = graph.volume(range(half, n))
        # the dense side has ~5x the edges (avg degree 10 vs 2)
        assert dense_volume > 3 * sparse_volume

    def test_summary_renders(self):
        row = gab(scale=0.1).summary().as_row()
        assert "gab" in row
