"""Tests for DistributedFrontierSampler (Theorem 5.5)."""

from collections import Counter

import pytest

from repro.graph.graph import Graph
from repro.sampling.distributed import DistributedFrontierSampler
from repro.sampling.frontier import FrontierSampler


class TestValidation:
    def test_dimension_positive(self):
        with pytest.raises(ValueError):
            DistributedFrontierSampler(0)

    def test_bad_seeding(self):
        with pytest.raises(ValueError):
            DistributedFrontierSampler(2, seeding="nope")

    def test_negative_seed_cost(self):
        with pytest.raises(ValueError):
            DistributedFrontierSampler(2, seed_cost=-1)


class TestMechanics:
    def test_budget_accounting(self, house):
        trace = DistributedFrontierSampler(4).sample(house, 100, rng=0)
        assert trace.num_steps == 96

    def test_edges_real(self, house):
        trace = DistributedFrontierSampler(3).sample(house, 150, rng=1)
        for u, v in trace.edges:
            assert house.has_edge(u, v)

    def test_per_walker_paths(self, house):
        trace = DistributedFrontierSampler(4).sample(house, 150, rng=2)
        for seed, edges in zip(trace.initial_vertices, trace.per_walker):
            if not edges:
                continue
            assert edges[0][0] == seed
            for (_u1, v1), (u2, _) in zip(edges, edges[1:]):
                assert v1 == u2

    def test_deterministic(self, house):
        a = DistributedFrontierSampler(3).sample(house, 90, rng=5)
        b = DistributedFrontierSampler(3).sample(house, 90, rng=5)
        assert a.edges == b.edges


class TestEquivalenceWithFS:
    """Theorem 5.5: DFS's embedded jump chain is the FS chain, so the
    two samplers must agree *in distribution*."""

    def test_stationary_edge_law_uniform(self, paw):
        sampler = DistributedFrontierSampler(3, seeding="stationary")
        trace = sampler.sample(paw, 60_000, rng=3)
        counts = Counter(trace.edges)
        expected = 1.0 / paw.volume()
        for _edge, count in counts.items():
            assert count / trace.num_steps == pytest.approx(expected, rel=0.15)

    def test_walker_move_rates_match_fs(self):
        """In a frozen-degree configuration, walker i jumps with
        long-run frequency deg(v_i)/sum(deg) under both samplers."""
        # Two disjoint stars: the walkers' degrees alternate between
        # hub degree and 1, but the *pair* of components keeps total
        # rate structure comparable across many steps.
        graph = Graph(14)
        for leaf in range(1, 7):
            graph.add_edge(0, leaf)  # hub 0, degree 6
        for leaf in range(8, 14):
            graph.add_edge(7, leaf)  # hub 7, degree 6
        steps = 30_000
        fs_trace = FrontierSampler(2).sample_from(
            graph, [0, 7], steps, rng=11
        )
        dfs = DistributedFrontierSampler(2)
        session = dfs.start(graph, rng=12, initial_vertices=[0, 7])
        session.advance(steps)
        dfs_trace = session.trace()
        fs_share = len(fs_trace.per_walker[0]) / steps
        dfs_share = len(dfs_trace.per_walker[0]) / steps
        assert fs_share == pytest.approx(0.5, abs=0.03)
        assert dfs_share == pytest.approx(0.5, abs=0.03)

    def test_visit_distribution_matches_fs(self, paw):
        """Long-run vertex visit frequencies agree between FS and DFS."""
        steps = 40_000
        fs = FrontierSampler(2, seeding="stationary").sample(
            paw, steps, rng=21
        )
        dfs = DistributedFrontierSampler(2, seeding="stationary").sample(
            paw, steps, rng=22
        )
        fs_counts = Counter(v for _, v in fs.edges)
        dfs_counts = Counter(v for _, v in dfs.edges)
        for v in paw.vertices():
            assert fs_counts[v] / fs.num_steps == pytest.approx(
                dfs_counts[v] / dfs.num_steps, abs=0.02
            )
