"""Tests for the eq. (7) vertex label density estimator."""

import pytest

from repro.graph.labels import VertexLabeling
from repro.sampling.base import WalkTrace
from repro.sampling.single import SingleRandomWalk
from repro.estimators.vertex_density import (
    vertex_label_densities_from_trace,
    vertex_label_density_from_trace,
    vertex_label_density_from_vertices,
)
from repro.metrics.exact import true_vertex_label_density


def _labeled_paw(paw):
    labels = VertexLabeling()
    labels.add(0, "hub")
    labels.add(3, "leaf")
    labels.add(1, "mid")
    labels.add(2, "mid")
    return labels


class TestFromTrace:
    def test_empty_trace_rejected(self, paw):
        trace = WalkTrace("x", [], [0], 0, 1.0)
        with pytest.raises(ValueError):
            vertex_label_density_from_trace(paw, trace, VertexLabeling(), "l")

    def test_exact_on_deterministic_trace(self, paw):
        """Hand-computed: trace visits vertices 0 (deg 3) and 3 (deg 1).

        theta_hat(hub) = (1/3) / (1/3 + 1/1) = 0.25
        """
        labels = _labeled_paw(paw)
        trace = WalkTrace("x", [(3, 0), (0, 3)], [3], 2, 1.0)
        estimate = vertex_label_density_from_trace(paw, trace, labels, "hub")
        assert estimate == pytest.approx(0.25)

    def test_converges_to_truth(self, paw):
        labels = _labeled_paw(paw)
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 50_000, rng=0
        )
        truth = true_vertex_label_density(paw, labels, "mid")
        estimate = vertex_label_density_from_trace(paw, trace, labels, "mid")
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_unbiased_for_degree_skewed_label(self, paw):
        """The 1/deg reweighting is what makes high-degree labels not
        over-counted; the plain average would overestimate 'hub'."""
        labels = _labeled_paw(paw)
        trace = SingleRandomWalk(seeding="stationary").sample(
            paw, 50_000, rng=1
        )
        reweighted = vertex_label_density_from_trace(paw, trace, labels, "hub")
        plain = sum(
            1 for _, v in trace.edges if labels.has_label(v, "hub")
        ) / trace.num_steps
        truth = 0.25
        assert reweighted == pytest.approx(truth, abs=0.02)
        assert plain > truth + 0.05  # visibly biased

    def test_batch_matches_single(self, paw):
        labels = _labeled_paw(paw)
        trace = SingleRandomWalk().sample(paw, 2000, rng=2)
        batch = vertex_label_densities_from_trace(
            paw, trace, labels, ["hub", "mid", "leaf"]
        )
        for label in ("hub", "mid", "leaf"):
            single = vertex_label_density_from_trace(paw, trace, labels, label)
            assert batch[label] == pytest.approx(single)

    def test_batch_missing_label_zero(self, paw):
        labels = _labeled_paw(paw)
        trace = SingleRandomWalk().sample(paw, 500, rng=3)
        batch = vertex_label_densities_from_trace(paw, trace, labels, ["nope"])
        assert batch["nope"] == 0.0

    def test_densities_sum_to_one_for_partition(self, paw):
        """Labels that partition V have densities summing to 1 under
        the shared normalizer."""
        labels = _labeled_paw(paw)
        trace = SingleRandomWalk().sample(paw, 5000, rng=4)
        batch = vertex_label_densities_from_trace(
            paw, trace, labels, ["hub", "mid", "leaf"]
        )
        assert sum(batch.values()) == pytest.approx(1.0)


class TestFromVertices:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            vertex_label_density_from_vertices([], VertexLabeling(), "l")

    def test_plain_fraction(self):
        labels = VertexLabeling()
        labels.add(1, "x")
        estimate = vertex_label_density_from_vertices([1, 2, 1, 3], labels, "x")
        assert estimate == pytest.approx(0.5)
