"""Tests for the social-network stand-in generator."""

import pytest

from repro.generators.social import SocialGraphSpec, social_network, zipf_groups
from repro.graph.components import connected_components


class TestSpecValidation:
    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            SocialGraphSpec(num_vertices=5)

    def test_dust_exceeding_graph_rejected(self):
        with pytest.raises(ValueError):
            SocialGraphSpec(
                num_vertices=100, dust_components=20, dust_size=8
            )

    def test_member_fraction_range(self):
        with pytest.raises(ValueError):
            SocialGraphSpec(num_vertices=100, member_fraction=1.5)


class TestSocialNetwork:
    def test_sizes(self):
        spec = SocialGraphSpec(num_vertices=500, dust_components=5, dust_size=8)
        graph, _ = social_network(spec, rng=0)
        assert graph.num_vertices == 500

    def test_dust_creates_components(self):
        spec = SocialGraphSpec(
            num_vertices=600, min_degree=2, dust_components=10, dust_size=8
        )
        graph, _ = social_network(spec, rng=1)
        components = connected_components(graph.to_symmetric())
        # at least the 10 dust components plus the core
        assert len(components) >= 11
        assert len(components[0]) >= 400  # dominant core

    def test_dust_components_have_min_size(self):
        spec = SocialGraphSpec(
            num_vertices=400, min_degree=2, dust_components=6, dust_size=7
        )
        graph, _ = social_network(spec, rng=2)
        components = connected_components(graph.to_symmetric())
        small = [c for c in components if len(c) <= 7]
        assert len(small) >= 6
        assert all(len(c) == 7 for c in small)

    def test_groups_assigned(self):
        spec = SocialGraphSpec(
            num_vertices=1000, num_groups=20, member_fraction=0.3
        )
        _, labels = social_network(spec, rng=3)
        member_count = sum(1 for _ in labels.labeled_vertices())
        assert member_count == pytest.approx(300, abs=60)

    def test_deterministic(self):
        spec = SocialGraphSpec(num_vertices=300)
        a, _ = social_network(spec, rng=11)
        b, _ = social_network(spec, rng=11)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_heavy_tail(self):
        spec = SocialGraphSpec(num_vertices=3000, out_exponent=1.9)
        graph, _ = social_network(spec, rng=4)
        symmetric = graph.to_symmetric()
        assert symmetric.max_degree() > 4 * symmetric.average_degree()


class TestZipfGroups:
    def test_no_groups(self):
        labels = zipf_groups(100, 0, rng=0)
        assert len(labels) == 0

    def test_member_fraction_zero(self):
        labels = zipf_groups(100, 10, member_fraction=0.0, rng=0)
        assert len(labels) == 0

    def test_negative_groups_rejected(self):
        with pytest.raises(ValueError):
            zipf_groups(10, -1)

    def test_extra_prob_validated(self):
        with pytest.raises(ValueError):
            zipf_groups(10, 5, extra_group_prob=1.0)

    def test_zipf_popularity_ordering(self):
        labels = zipf_groups(
            20000, 10, member_fraction=0.5, zipf_exponent=1.5, rng=5
        )
        counts = [labels.count_with_label(g) for g in range(10)]
        # group 0 strictly most popular; top beats bottom clearly
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[9]

    def test_labels_are_group_ids(self):
        labels = zipf_groups(500, 5, member_fraction=0.5, rng=6)
        assert labels.all_labels() <= set(range(5))

    def test_multiple_memberships_possible(self):
        labels = zipf_groups(
            2000, 8, member_fraction=0.9, extra_group_prob=0.7, rng=7
        )
        multi = [
            v for v in labels.labeled_vertices() if len(labels.labels_of(v)) > 1
        ]
        assert multi
