#!/usr/bin/env python3
"""Whole-suite accuracy-drift gate against a committed baseline report.

``repro suite run`` writes a deterministic ``report.json`` — per
scenario x method x budget x estimator error statistics.  This tool
diffs a fresh report against the baseline committed at
``suites/baselines/<suite>.json`` and fails (exit 1) when any
statistic *regressed* (grew) beyond the tolerance:

    current > baseline * (1 + rel-tol) + abs-tol

It is the statistical analogue of ``check_bench_trend.py``: that gate
catches kernels getting slower, this one catches estimators getting
*worse* — a sampler change that silently inflates NRMSE on any cell of
the smoke grid fails the build naming the exact cell.  Improvements
and added/retired cells are reported but never fail, so growing the
suite does not break CI.

Usage:

    python tools/check_suite_drift.py --current report.json \\
        [--baseline suites/baselines/<suite>.json] \\
        [--rel-tol 0.25] [--abs-tol 1e-9] [--update]

With no ``--baseline``, the path is derived from the report's own
``suite`` name.  ``--update`` copies the current report over the
baseline (run it after an intentional statistics change — a new
estimator, a changed schedule — and commit the result; see
``suites/baselines/README.md``).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

from _trend import compare_metrics, format_failures, print_comparison

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "suites" / "baselines"
#: The report schema this gate understands (mirrors
#: ``repro.experiments.report.REPORT_SCHEMA``).
SCHEMA = 1


def load_report(path: Path, role: str) -> dict:
    """Read and sanity-check one report side; SystemExit on problems."""
    if not path.exists():
        raise SystemExit(
            f"{role} report {path} not found; generate it with:"
            " repro suite run suites/<suite>.yaml --out <dir>"
            + (
                " (then --update to commit it as the baseline)"
                if role == "baseline"
                else ""
            )
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        if not isinstance(report, dict) or "scenarios" not in report:
            raise ValueError("not a suite report (no 'scenarios' key)")
        if report.get("schema") != SCHEMA:
            raise ValueError(
                f"schema {report.get('schema')!r} != supported {SCHEMA}"
            )
    except (json.JSONDecodeError, ValueError) as error:
        raise SystemExit(
            f"{role} report {path} is unreadable ({error}); regenerate"
            " it with: repro suite run suites/<suite>.yaml --out <dir>"
        ) from error
    return report


def flatten(report: dict) -> dict:
    """Delegate to the report pipeline's flattener when importable,
    else use a structural fallback (CI runs this tool without the
    package installed in some legs)."""
    try:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.experiments.report import flatten_report

        return flatten_report(report)
    except ImportError:
        flat = {}
        for scenario_id, scenario in sorted(report["scenarios"].items()):
            for method, per_budget in sorted(scenario["methods"].items()):
                for budget_key, ests in sorted(per_budget.items()):
                    for name, stats in sorted(ests.items()):
                        for stat, value in sorted(stats.items()):
                            key = (
                                f"{scenario_id}/{method}/B{budget_key}"
                                f"/{name}.{stat}"
                            )
                            flat[key] = abs(float(value))
        return flat


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("report.json"),
        help="fresh report.json from 'repro suite run'",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed baseline report (default:"
        " suites/baselines/<suite>.json from the report's suite name)",
    )
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.25,
        help="allowed relative error growth per statistic (default"
        " 0.25 = +25%%)",
    )
    parser.add_argument(
        "--abs-tol",
        type=float,
        default=1e-9,
        help="absolute slack added on top of the relative tolerance,"
        " so exact-zero baselines tolerate float noise (default 1e-9)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current report over the baseline and exit",
    )
    args = parser.parse_args(argv)

    try:
        current_report = load_report(args.current, "current")
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 1
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = BASELINE_DIR / f"{current_report['suite']}.json"

    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.current, baseline_path)
        print(
            f"baseline updated: {baseline_path}"
            f" ({len(flatten(current_report))} statistics)"
        )
        return 0

    try:
        baseline_report = load_report(baseline_path, "baseline")
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 1

    if baseline_report["suite"] != current_report["suite"]:
        print(
            f"suite mismatch: baseline is {baseline_report['suite']!r},"
            f" current is {current_report['suite']!r}; point --baseline"
            " at the right committed report",
            file=sys.stderr,
        )
        return 1

    baseline = flatten(baseline_report)
    current = flatten(current_report)
    if not current:
        print(
            f"current report {args.current} contains no statistics;"
            " nothing to gate",
            file=sys.stderr,
        )
        return 1

    threshold = 1.0 + args.rel_tol
    rows, failures = compare_metrics(
        baseline, current, threshold, abs_slack=args.abs_tol
    )
    print(
        f"suite {current_report['suite']!r}: {len(current)} statistics"
        f" vs baseline {baseline_path}"
        f" (rel-tol +{args.rel_tol:.0%}, abs-tol {args.abs_tol:g})"
    )
    print_comparison(rows, label="statistic")

    if failures:
        worst = max(failures, key=lambda row: row.ratio)
        print(
            f"\nFAIL: {len(failures)} suite statistic(s) regressed"
            f" beyond +{args.rel_tol:.0%} of baseline"
            f" (worst: {worst.key} at {worst.ratio:.2f}x)",
            file=sys.stderr,
        )
        for line in format_failures(failures):
            print(line, file=sys.stderr)
        print(
            "\nIf the change is intentional, regenerate the baseline:"
            " see suites/baselines/README.md",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: all suite statistics within +{args.rel_tol:.0%}"
        " of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
