#!/usr/bin/env python3
"""Lint markdown link targets: every relative link must resolve.

Usage:  python tools/check_markdown_links.py [FILE ...]

With no arguments, checks every tracked-looking markdown file: the
repo root's ``*.md`` plus ``docs/**/*.md`` and ``suites/**/*.md``.
External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
skipped; a relative target is resolved against the linking file's
directory and must exist (anchors are stripped first).  Exits non-zero
listing every broken link, so CI can gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links ``[text](target)``; images share the same form.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

REPO_ROOT = Path(__file__).resolve().parent.parent


def broken_links(path: Path) -> list[str]:
    problems = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for target in LINK.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            bare = target.split("#", 1)[0]
            # GitHub resolves /-leading targets against the repo root,
            # not the filesystem root.
            base = REPO_ROOT if bare.startswith("/") else path.parent
            if not (base / bare.lstrip("/")).exists():
                problems.append(f"{path}:{number}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(argument) for argument in argv]
    else:
        root = Path(__file__).resolve().parent.parent
        files = (
            sorted(root.glob("*.md"))
            + sorted(root.glob("docs/**/*.md"))
            + sorted(root.glob("suites/**/*.md"))
        )
    missing = [path for path in files if not path.is_file()]
    if missing:
        for path in missing:
            print(f"no such markdown file: {path}", file=sys.stderr)
        return 2
    problems = [
        problem for path in files for problem in broken_links(path)
    ]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} markdown file(s):"
        f" {len(problems)} broken link(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
