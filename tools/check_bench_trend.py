#!/usr/bin/env python3
"""Benchmark-regression trend check against a committed baseline.

CI uploads a pytest-benchmark report (``BENCH_ci.json``) on every run;
this tool compares the walker-kernel benchmarks in the current report
against the baseline committed at ``benchmarks/BENCH_baseline.json``
and fails (exit 1) when any of them slowed down by more than the
threshold (default 1.3x = +30%).  That turns the per-run artifact into
an actual trend gate: a kernel regression fails the build instead of
merely shrinking the 5x backend-speedup margin.

To stay meaningful across machines (laptops, different GitHub runner
generations), the gate compares *normalized* timings: each gated
benchmark's best-of-run time is divided by the same report's
``test_fs_list_backend`` time — the interpreted pure-Python walker,
whose speed tracks the host machine.  A kernel that regresses 2x trips
the gate on any machine; a uniformly slower runner cancels out.

Usage:

    python tools/check_bench_trend.py \\
        [--current BENCH_ci.json] \\
        [--baseline benchmarks/BENCH_baseline.json] \\
        [--threshold 1.3] [--pattern test_fs_] \\
        [--reference test_fs_list_backend] [--update]

``--update`` rewrites the baseline from the current report (run it
after an intentional kernel change and commit the result).  Benchmarks
present on only one side are reported but never fail the check, so
adding or retiring benchmarks does not break CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from _trend import compare_metrics, format_failures, print_comparison

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
#: Substring selecting the walker-kernel benchmarks that gate the build.
DEFAULT_PATTERN = "test_fs_"
#: The interpreted walker: the machine-speed yardstick everything else
#: is normalized by.
DEFAULT_REFERENCE = "test_fs_list_backend"


def extract_timings(report_path: Path, pattern: str) -> dict:
    """``{benchmark name: min seconds}`` for benchmarks matching pattern."""
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    timings = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        if pattern in name:
            timings[name] = float(bench["stats"]["min"])
    return timings


def normalize(timings: dict, reference: str) -> dict:
    """Each gated timing divided by the reference benchmark's timing."""
    if reference not in timings:
        raise KeyError(
            f"reference benchmark {reference!r} missing from the report;"
            " cannot normalize"
        )
    yardstick = timings[reference]
    return {
        name: seconds / yardstick
        for name, seconds in timings.items()
        if name != reference
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_ci.json"),
        help="pytest-benchmark JSON report from the current run",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline (see --update)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.3,
        help="fail when current/baseline exceeds this ratio (default 1.3)",
    )
    parser.add_argument(
        "--pattern",
        default=DEFAULT_PATTERN,
        help="substring selecting the gated benchmarks"
        f" (default {DEFAULT_PATTERN!r})",
    )
    parser.add_argument(
        "--reference",
        default=DEFAULT_REFERENCE,
        help="benchmark used as the machine-speed yardstick"
        f" (default {DEFAULT_REFERENCE!r})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current report and exit",
    )
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(
            f"benchmark report {args.current} not found; generate it"
            " first with: python -m pytest benchmarks -q"
            f" --benchmark-json={args.current}",
            file=sys.stderr,
        )
        return 1
    try:
        timings = extract_timings(args.current, args.pattern)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        print(
            f"benchmark report {args.current} is unreadable"
            f" ({error}); regenerate it with: python -m pytest"
            f" benchmarks -q --benchmark-json={args.current}",
            file=sys.stderr,
        )
        return 1
    if not timings:
        print(
            f"no benchmarks matching {args.pattern!r} in {args.current};"
            " nothing to check",
            file=sys.stderr,
        )
        return 1
    try:
        current = normalize(timings, args.reference)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 1
    if not current:
        print(
            f"only the reference benchmark matched {args.pattern!r};"
            " nothing to gate",
            file=sys.stderr,
        )
        return 1

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "pattern": args.pattern,
                    "reference": args.reference,
                    "normalized_min": current,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"baseline updated: {args.baseline} ({len(current)} entries)")
        return 0

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --update to"
            " create one",
            file=sys.stderr,
        )
        return 1
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline_file = json.load(handle)
    baseline = baseline_file["normalized_min"]
    if baseline_file.get("reference") != args.reference:
        print(
            f"baseline was normalized by"
            f" {baseline_file.get('reference')!r}, not {args.reference!r};"
            " regenerate it with --update",
            file=sys.stderr,
        )
        return 1

    print(f"normalized by {args.reference} = {timings[args.reference]:.4f}s")
    rows, failures = compare_metrics(baseline, current, args.threshold)
    print_comparison(rows, label="benchmark", key_width=40)

    if failures:
        worst = max(failures, key=lambda row: row.ratio)
        print(
            f"\nFAIL: {len(failures)} walker-kernel benchmark(s) slowed"
            f" beyond {args.threshold}x relative to {args.reference}"
            f" (worst: {worst.key} at {worst.ratio:.2f}x)",
            file=sys.stderr,
        )
        for line in format_failures(failures):
            print(line, file=sys.stderr)
        return 1
    print(f"\nOK: all gated benchmarks within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
