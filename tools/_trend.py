"""Shared tolerance/compare core for the CI trend gates.

``check_bench_trend.py`` (kernel timings) and ``check_suite_drift.py``
(suite error statistics) gate different numbers with the same
mechanics: flatten both sides to ``{key: value}``, compare key by key
against a ratio threshold (plus an optional absolute slack for
near-zero metrics), print one table row per key, and on failure name
every offending key with its baseline, current and ratio.  This module
is that mechanics, so the two gates cannot drift apart in how they
report drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple


@dataclass
class Comparison:
    """One key's baseline-vs-current verdict."""

    key: str
    baseline: Optional[float]  # None: key is new in the current run
    current: Optional[float]  # None: key was retired
    regressed: bool = False

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return None if self.current == 0 else float("inf")
        return self.current / self.baseline


def compare_metrics(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    threshold: float,
    abs_slack: float = 0.0,
) -> Tuple[List[Comparison], List[Comparison]]:
    """Compare two flat metric maps; larger is worse.

    A key regresses when ``current > baseline * threshold + abs_slack``
    — the slack keeps near-zero baselines (a metric that was exactly
    right) from tripping the ratio on float noise.  Keys present on
    only one side are reported but never regress, so adding or
    retiring metrics does not break the gate.  Returns
    ``(all rows, regressed rows)`` in sorted key order.
    """
    rows: List[Comparison] = []
    failures: List[Comparison] = []
    for key in sorted(set(baseline) | set(current)):
        row = Comparison(
            key=key, baseline=baseline.get(key), current=current.get(key)
        )
        if row.baseline is not None and row.current is not None:
            row.regressed = row.current > row.baseline * threshold + abs_slack
        rows.append(row)
        if row.regressed:
            failures.append(row)
    return rows, failures


def print_comparison(
    rows: List[Comparison],
    label: str = "metric",
    key_width: Optional[int] = None,
) -> None:
    """The gates' shared table: key, baseline, current, ratio, verdict."""
    width = key_width or max([len(label)] + [len(r.key) for r in rows])
    print(f"{label:<{width}} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for row in rows:
        if row.baseline is None:
            print(f"{row.key:<{width}} {'-':>10} {row.current:>10.4f}     new")
            continue
        if row.current is None:
            print(f"{row.key:<{width}} {row.baseline:>10.4f} {'-':>10} retired")
            continue
        ratio = row.ratio
        shown = f"{ratio:>6.2f}x" if ratio != float("inf") else "    inf"
        verdict = "REGRESSED" if row.regressed else "ok"
        print(
            f"{row.key:<{width}} {row.baseline:>10.4f} {row.current:>10.4f}"
            f" {shown} {verdict}"
        )


def format_failures(failures: List[Comparison]) -> List[str]:
    """One line per offending key: key, baseline, current, ratio."""
    lines = []
    for row in failures:
        ratio = row.ratio
        shown = f"{ratio:.2f}x" if ratio != float("inf") else "inf"
        lines.append(
            f"  {row.key}: baseline {row.baseline:.4f} ->"
            f" current {row.current:.4f} ({shown})"
        )
    return lines
