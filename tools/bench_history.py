#!/usr/bin/env python3
"""Append one dated entry per CI run to the benchmark history ledger.

``check_bench_trend.py`` answers "did this run regress vs the
committed baseline?"; this tool keeps the longitudinal record that
question throws away.  Each invocation reads a pytest-benchmark report
(``BENCH_ci.json``) and appends a single JSON line to
``benchmarks/BENCH_history.jsonl``::

    {"date": "2026-08-08", "commit": "<sha>",
     "reference": "test_fs_list_backend",
     "medians": {"test_fs_csr_backend": 0.0012, ...},
     "normalized": {"test_fs_csr_backend": 0.0249, ...}}

``medians`` are raw seconds (machine-dependent; useful within one
runner generation); ``normalized`` divides each gated benchmark's
median by the reference walker's median from the same report, the
machine-independent trend the baseline gate also uses.  The ledger is
append-only JSONL so CI can `cat` it, plots can stream it, and a
truncated line from a killed job corrupts at most itself.

Usage:

    python tools/bench_history.py --current BENCH_ci.json \\
        [--history benchmarks/BENCH_history.jsonl] \\
        [--commit $GITHUB_SHA] [--pattern test_fs_] \\
        [--reference test_fs_list_backend]
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = REPO_ROOT / "benchmarks" / "BENCH_history.jsonl"
DEFAULT_PATTERN = "test_fs_"
DEFAULT_REFERENCE = "test_fs_list_backend"


def extract_medians(report_path: Path, pattern: str) -> dict:
    """``{benchmark name: median seconds}`` for benchmarks matching
    ``pattern`` (plus the reference, which always qualifies via the
    default pattern)."""
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    medians = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        if pattern in name:
            medians[name] = float(bench["stats"]["median"])
    return medians


def history_entry(
    medians: dict, commit: str, reference: str, date: str
) -> dict:
    reference_median = medians.get(reference)
    normalized = {}
    if reference_median:
        normalized = {
            name: median / reference_median
            for name, median in sorted(medians.items())
            if name != reference
        }
    return {
        "date": date,
        "commit": commit,
        "reference": reference,
        "medians": dict(sorted(medians.items())),
        "normalized": normalized,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Append a benchmark report to the history ledger."
    )
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY)
    parser.add_argument("--commit", default="unknown")
    parser.add_argument("--pattern", default=DEFAULT_PATTERN)
    parser.add_argument("--reference", default=DEFAULT_REFERENCE)
    parser.add_argument(
        "--date",
        default=None,
        help="ISO date stamp (default: today, UTC)",
    )
    args = parser.parse_args(argv)

    medians = extract_medians(args.current, args.pattern)
    if not medians:
        print(
            f"no benchmarks matching {args.pattern!r} in {args.current}",
            file=sys.stderr,
        )
        return 1
    date = args.date or datetime.datetime.now(
        datetime.timezone.utc
    ).strftime("%Y-%m-%d")
    entry = history_entry(medians, args.commit, args.reference, date)
    args.history.parent.mkdir(parents=True, exist_ok=True)
    with open(args.history, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(
        f"appended {len(medians)} medians for {entry['commit'][:12]}"
        f" ({entry['date']}) to {args.history}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
