"""Diagnostic records and ``# repro-lint: disable=`` parsing.

Suppressions are parsed from *real* comment tokens (via
:mod:`tokenize`), never from raw line scans — so fixture code embedded
in test-file string literals cannot accidentally suppress (or trip)
anything.  A ``disable`` comment silences the named rules on the line
it shares with code, or — when it stands on a comment-only line — on
the next code line below it.  The reason clause after ``--`` is
mandatory; a ``disable`` without one is itself reported as
:data:`TOOL_RULE` and suppresses nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

#: Rule id for tool-level problems: unparseable files and malformed
#: suppression comments.  Never suppressible.
TOOL_RULE = "RPL000"

_RULE_ID = re.compile(r"^RPL\d{3}$")
_DISABLE = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>[A-Za-z_-]+)"
    r"(?:=(?P<rules>[^#]*?))?"
    r"(?:\s+--\s*(?P<reason>.*))?\s*$"
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``path:line:col: RULE message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)


@dataclass
class Suppressions:
    """Per-file map of code line -> rule ids silenced on that line."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: Malformed ``disable`` comments, already rendered as RPL000
    #: diagnostics by the parser.
    malformed: List[Diagnostic] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule == TOOL_RULE:
            return False
        return rule in self.by_line.get(line, set())


def _attach_line(comment: tokenize.TokenInfo, tokens, index: int) -> int:
    """The code line a ``disable`` comment governs.

    Inline comments govern their own line.  Comment-only lines govern
    the next line that carries actual code (skipping further comments,
    blank lines and indentation tokens) — the natural home for long
    reasons that wrap onto continuation comment lines.
    """
    line_text = comment.line[: comment.start[1]]
    if line_text.strip():
        return comment.start[0]
    skip = (
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
    )
    for token in tokens[index + 1 :]:
        if token.type not in skip and token.type != tokenize.ENDMARKER:
            return token.start[0]
    return comment.start[0]


def parse_suppressions(path: str, source: str) -> Suppressions:
    """All ``# repro-lint: disable=...`` comments in ``source``."""
    result = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return result  # the engine reports the parse failure itself
    for index, token in enumerate(tokens):
        if token.type != tokenize.COMMENT:
            continue
        match = _DISABLE.match(token.string)
        if match is None:
            if "repro-lint" in token.string:
                result.malformed.append(
                    Diagnostic(
                        path, token.start[0], token.start[1], TOOL_RULE,
                        "unrecognized repro-lint comment; expected"
                        " '# repro-lint: disable=RPLxxx -- reason'",
                    )
                )
            continue
        line, col = token.start
        if match.group("verb") != "disable":
            result.malformed.append(
                Diagnostic(
                    path, line, col, TOOL_RULE,
                    f"unknown repro-lint verb {match.group('verb')!r};"
                    " only 'disable=' is supported",
                )
            )
            continue
        rules = [
            rule.strip()
            for rule in (match.group("rules") or "").split(",")
            if rule.strip()
        ]
        bad = [rule for rule in rules if not _RULE_ID.match(rule)]
        reason = (match.group("reason") or "").strip()
        if not rules or bad:
            result.malformed.append(
                Diagnostic(
                    path, line, col, TOOL_RULE,
                    "disable= needs a comma-separated list of RPLxxx"
                    f" rule ids, got {match.group('rules')!r}",
                )
            )
            continue
        if not reason:
            result.malformed.append(
                Diagnostic(
                    path, line, col, TOOL_RULE,
                    "disable= requires a reason:"
                    " '# repro-lint: disable="
                    + ",".join(rules)
                    + " -- why this site is exempt'",
                )
            )
            continue
        target = _attach_line(token, tokens, index)
        result.by_line.setdefault(target, set()).update(rules)
    return result
