"""RPL004 — ctypes declarations must match the C kernel prototypes.

A foreign call through a drifted ``argtypes`` list passes garbage
pointers and corrupts memory without raising.  This rule parses the
``repro_*`` prototypes out of ``_kernels.c`` (with the same
``_cproto`` parser the runtime loader uses) and diffs them against
whatever the sibling ``_native.py`` declares, in either style:

- the table form: a module-level ``_DECLARATIONS`` dict of
  ``name -> (restype_token, (argtype_tokens, ...))``;
- the classic form: ``lib.repro_x.argtypes = [...]`` /
  ``lib.repro_x.restype = ...`` assignments, with ``ctypes.c_*`` names
  and ``POINTER(...)`` aliases resolved to the canonical tokens.

Arity or per-position type disagreement, a Python declaration with no
C prototype, and a C kernel ``_native.py`` never declares are all
diagnostics.  :func:`repro.sampling._native.load` performs the same
diff at runtime for out-of-tree builds.
"""

from __future__ import annotations

import ast
import importlib.util
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.repro_lint.diagnostics import Diagnostic

#: ctypes spelling -> canonical token (see ``_cproto``).
_CTYPES_TOKENS = {
    "c_int64": "i64",
    "c_longlong": "i64",
    "c_double": "f64",
}
_POINTER_TOKENS = {
    "c_int64": "i64*",
    "c_longlong": "i64*",
    "c_double": "f64*",
}

Declaration = Tuple[Optional[str], Tuple[str, ...], int]


def _load_cproto(native_path: Path):
    """The shared prototype parser, wherever it lives.

    Prefer the sibling ``_cproto.py`` of the scanned ``_native.py``
    (works with no installed package at all); fall back to the
    importable ``repro.sampling._cproto`` for fixture trees that only
    provide ``_native.py`` + ``_kernels.c``.
    """
    sibling = native_path.with_name("_cproto.py")
    if sibling.is_file():
        spec = importlib.util.spec_from_file_location(
            "_repro_lint_cproto", sibling
        )
        if spec is not None and spec.loader is not None:
            module = importlib.util.module_from_spec(spec)
            # dataclasses resolves string annotations through
            # sys.modules[cls.__module__]; register before executing.
            sys.modules[spec.name] = module
            spec.loader.exec_module(module)
            return module
    try:
        from repro.sampling import _cproto
        return _cproto
    except ImportError:
        return None


def _terminal(node: ast.expr) -> str:
    while isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _pointer_aliases(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``X = POINTER(c_int64)``-style alias names."""
    aliases: Dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        value = node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and _terminal(value.func) == "POINTER"
            and len(value.args) == 1
        ):
            pointee = _terminal(value.args[0])
            token = _POINTER_TOKENS.get(pointee)
            if token is not None:
                aliases[target.id] = token
    return aliases


def _token_of(node: ast.expr, pointer_aliases: Dict[str, str]) -> str:
    """Canonical token of one ctypes expression ('?' if unknown)."""
    if isinstance(node, ast.Constant) and node.value is None:
        return "void"
    if isinstance(node, ast.Call) and _terminal(node.func) == "POINTER":
        if len(node.args) == 1:
            return _POINTER_TOKENS.get(_terminal(node.args[0]), "?")
        return "?"
    name = _terminal(node)
    if name in pointer_aliases:
        return pointer_aliases[name]
    return _CTYPES_TOKENS.get(name, "?")


def _table_declarations(tree: ast.Module) -> Dict[str, Declaration]:
    """Declarations from a ``_DECLARATIONS`` token-dict, if present."""
    declarations: Dict[str, Declaration] = {}
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        named = [
            t for t in targets
            if isinstance(t, ast.Name) and t.id == "_DECLARATIONS"
        ]
        if not named or not isinstance(value, ast.Dict):
            continue
        for key, entry in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(entry, (ast.Tuple, ast.List))
                and len(entry.elts) == 2
            ):
                continue
            restype_node, args_node = entry.elts
            if not (
                isinstance(restype_node, ast.Constant)
                and isinstance(restype_node.value, str)
                and isinstance(args_node, (ast.Tuple, ast.List))
            ):
                continue
            argtypes = tuple(
                element.value
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
                else "?"
                for element in args_node.elts
            )
            declarations[key.value] = (
                restype_node.value, argtypes, key.lineno
            )
    return declarations


def _assignment_declarations(tree: ast.Module) -> Dict[str, Declaration]:
    """Declarations from ``lib.X.argtypes`` / ``.restype`` assigns."""
    pointer_aliases = _pointer_aliases(tree)
    argtypes_by_name: Dict[str, Tuple[Tuple[str, ...], int]] = {}
    restype_by_name: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Attribute)
        ):
            continue
        kernel = target.value.attr
        if not kernel.startswith("repro_"):
            continue
        if target.attr == "argtypes":
            if isinstance(node.value, (ast.List, ast.Tuple)):
                argtypes_by_name[kernel] = (
                    tuple(
                        _token_of(element, pointer_aliases)
                        for element in node.value.elts
                    ),
                    node.lineno,
                )
        elif target.attr == "restype":
            restype_by_name[kernel] = _token_of(
                node.value, pointer_aliases
            )
    return {
        kernel: (restype_by_name.get(kernel), argtypes, line)
        for kernel, (argtypes, line) in argtypes_by_name.items()
    }


class KernelSignatureDrift:
    id = "RPL004"
    title = "_native.py ctypes declarations agree with _kernels.c"

    def check(self, ctx) -> List[Diagnostic]:
        if ctx.path.name != "_native.py":
            return []
        kernels = ctx.path.with_name("_kernels.c")
        if not kernels.is_file():
            return []
        cproto = _load_cproto(ctx.path)
        if cproto is None:
            return [
                Diagnostic(
                    ctx.display, 1, 0, self.id,
                    "cannot locate the _cproto prototype parser next to"
                    " _native.py or on the import path; RPL004 not run",
                )
            ]
        try:
            prototypes = cproto.parse_prototypes(
                kernels.read_text(encoding="utf-8"), origin=str(kernels)
            )
        except cproto.CPrototypeError as error:
            return [Diagnostic(ctx.display, 1, 0, self.id, str(error))]
        declarations = _table_declarations(ctx.tree)
        declarations.update(_assignment_declarations(ctx.tree))
        diagnostics: List[Diagnostic] = []
        for name, (restype, argtypes, line) in sorted(
            declarations.items()
        ):
            prototype = prototypes.get(name)
            rendered = (
                f"{restype or '?'} {name}({', '.join(argtypes)})"
            )
            if prototype is None:
                diagnostics.append(
                    Diagnostic(
                        ctx.display, line, 0, self.id,
                        f"{name!r} is declared here but {kernels.name}"
                        " defines no such kernel prototype",
                    )
                )
                continue
            if len(argtypes) != len(prototype.argtypes):
                diagnostics.append(
                    Diagnostic(
                        ctx.display, line, 0, self.id,
                        f"{name!r}: arity mismatch — declared"
                        f" [{rendered}] vs"
                        f" {kernels.name}:{prototype.line}"
                        f" [{prototype.render()}]",
                    )
                )
                continue
            drift = argtypes != prototype.argtypes or (
                restype is not None and restype != prototype.restype
            )
            if drift:
                diagnostics.append(
                    Diagnostic(
                        ctx.display, line, 0, self.id,
                        f"{name!r}: type mismatch — declared"
                        f" [{rendered}] vs"
                        f" {kernels.name}:{prototype.line}"
                        f" [{prototype.render()}]",
                    )
                )
        for name, prototype in sorted(prototypes.items()):
            if name not in declarations:
                diagnostics.append(
                    Diagnostic(
                        ctx.display, 1, 0, self.id,
                        f"{kernels.name}:{prototype.line} defines"
                        f" [{prototype.render()}] but _native.py never"
                        " declares it",
                    )
                )
        return diagnostics
