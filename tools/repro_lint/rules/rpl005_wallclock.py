"""RPL005 — no wall-clock or ambient nondeterminism in hot packages.

Scoped to ``repro/sampling/`` and ``repro/estimators/``: the layers
whose outputs must be a pure function of ``(graph, seed, parameters)``.
Flags:

- wall-clock and timer reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``datetime.now`` and friends) — sampling and
  estimation results must not depend on when they ran; timing belongs
  in ``benchmarks/``;
- ambient entropy (``os.urandom``, ``uuid.uuid4``, ``secrets.*``) —
  randomness arrives through seeded generators only;
- iteration over a ``set`` (literal, constructor call, or
  comprehension) in ``for`` loops and comprehensions — set order is
  salted per process, so anything it feeds into a trace wobbles
  between runs; sort first.

Intentional entropy sites (the documented ``rng=None`` escape hatch)
carry ``# repro-lint: disable=RPL005 -- reason``.
"""

from __future__ import annotations

import ast
from typing import List

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.imports import dotted_target

_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "timer read",
    "time.monotonic_ns": "timer read",
    "time.perf_counter": "timer read",
    "time.perf_counter_ns": "timer read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "read of OS entropy",
    "uuid.uuid1": "clock/MAC-derived id",
    "uuid.uuid4": "read of OS entropy",
    "secrets.token_bytes": "read of OS entropy",
    "secrets.token_hex": "read of OS entropy",
    "secrets.token_urlsafe": "read of OS entropy",
    "secrets.randbits": "read of OS entropy",
    "secrets.randbelow": "read of OS entropy",
}

_SCOPES = (("repro", "sampling"), ("repro", "estimators"))


def _in_scope(display: str) -> bool:
    parts = tuple(display.replace("\\", "/").split("/"))
    for scope in _SCOPES:
        for start in range(len(parts) - len(scope) + 1):
            if parts[start : start + len(scope)] == scope:
                return True
    return False


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class WallClockNondeterminism:
    id = "RPL005"
    title = "no wall-clock/entropy/set-order inputs in sampling+estimators"

    def check(self, ctx) -> List[Diagnostic]:
        if not _in_scope(ctx.display):
            return []
        diagnostics: List[Diagnostic] = []

        def flag(node: ast.AST, message: str) -> None:
            diagnostics.append(
                Diagnostic(
                    ctx.display, node.lineno, node.col_offset,
                    self.id, message,
                )
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = dotted_target(node.func, ctx.aliases)
                kind = _FORBIDDEN_CALLS.get(target or "")
                if kind is not None:
                    flag(
                        node,
                        f"{target}() is a {kind}; sampling/estimator"
                        " results must be a pure function of"
                        " (graph, seed, parameters)",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    flag(
                        node.iter,
                        "iterating a set: order is salted per process;"
                        " sort it before it can feed a trace",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                       ast.DictComp)
            ):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        flag(
                            generator.iter,
                            "iterating a set: order is salted per"
                            " process; sort it before it can feed a"
                            " trace",
                        )
        return diagnostics
