"""Rule registry: one module per RPL rule, assembled in id order."""

from tools.repro_lint.rules import (
    rpl001_rng,
    rpl002_picklable,
    rpl003_reentrancy,
    rpl004_csig,
    rpl005_wallclock,
)


def build_rules():
    """Fresh rule instances for one lint run (RPL003 carries state)."""
    return [
        rpl001_rng.UnseededGlobalRng(),
        rpl002_picklable.PicklablePoolTasks(),
        rpl003_reentrancy.ThreadCoreReentrancy(),
        rpl004_csig.KernelSignatureDrift(),
        rpl005_wallclock.WallClockNondeterminism(),
    ]


#: id -> one-line summary, for ``--list-rules`` and the docs table.
RULE_SUMMARIES = {
    rpl001_rng.UnseededGlobalRng.id: rpl001_rng.UnseededGlobalRng.title,
    rpl002_picklable.PicklablePoolTasks.id:
        rpl002_picklable.PicklablePoolTasks.title,
    rpl003_reentrancy.ThreadCoreReentrancy.id:
        rpl003_reentrancy.ThreadCoreReentrancy.title,
    rpl004_csig.KernelSignatureDrift.id:
        rpl004_csig.KernelSignatureDrift.title,
    rpl005_wallclock.WallClockNondeterminism.id:
        rpl005_wallclock.WallClockNondeterminism.title,
}
