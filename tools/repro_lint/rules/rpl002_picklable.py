"""RPL002 — spawn-pool callables must be module-level functions.

The spawn start method pickles every task callable by qualified name;
lambdas, closures and functions defined inside another function fail
at runtime with an opaque ``PicklingError`` — or worse, only fail on
the spawn executor while the thread executor silently accepts them,
splitting the "identical task code on every executor" contract.  This
rule rejects them statically at the call sites that fan work out:

- ``<pool>.map`` / ``imap`` / ``imap_unordered`` / ``starmap`` /
  ``apply`` / ``apply_async`` first arguments;
- ``starter=`` / ``initializer=`` keyword arguments anywhere (the
  session-starter hooks of ``ShardedSessionPool.run_anytime`` and
  ``run_plan``, and pool initializers).

``functools.partial`` over a module-level function stays legal — it
pickles by reference.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from tools.repro_lint.diagnostics import Diagnostic

_POOL_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
}
_CALLABLE_KEYWORDS = {"starter", "initializer"}


def _local_callables(tree: ast.Module) -> Dict[str, Set[str]]:
    """Names that are *not* safe to hand to a spawn pool.

    ``nested``: functions defined inside another function (closures —
    unpicklable).  ``lambdas``: names bound to a lambda anywhere.
    Module-level and class-level ``def``s are excluded; they pickle by
    qualified name.
    """
    nested: Set[str] = set()
    lambdas: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.Assign):
                if isinstance(child.value, ast.Lambda):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            lambdas.add(target.id)
                visit(child, inside_function)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return {"nested": nested, "lambdas": lambdas}


class PicklablePoolTasks:
    id = "RPL002"
    title = "spawn-pool callables must be module-level functions"

    def check(self, ctx) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        locals_map = _local_callables(ctx.tree)

        def flag(node: ast.expr, what: str, where: str) -> None:
            diagnostics.append(
                Diagnostic(
                    ctx.display, node.lineno, node.col_offset, self.id,
                    f"{what} handed to {where} cannot be pickled by the"
                    " spawn executor; define a module-level task"
                    " function instead",
                )
            )

        def inspect(value: ast.expr, where: str) -> None:
            if isinstance(value, ast.Lambda):
                flag(value, "lambda", where)
            elif isinstance(value, ast.Name):
                if value.id in locals_map["nested"]:
                    flag(
                        value,
                        f"locally defined function {value.id!r}", where,
                    )
                elif value.id in locals_map["lambdas"]:
                    flag(value, f"lambda bound to {value.id!r}", where)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
                and node.args
            ):
                inspect(node.args[0], f".{node.func.attr}()")
            for keyword in node.keywords:
                if keyword.arg in _CALLABLE_KEYWORDS:
                    inspect(keyword.value, f"{keyword.arg}=")
        return diagnostics
