"""RPL001 — no unseeded global RNG.

Deterministic code threads an explicit ``numpy.random.Generator`` or
``random.Random`` instance; the process-global streams make a result
depend on everything else the process ever drew.  Flags:

- ``np.random.default_rng()`` called with *no* arguments (an OS-entropy
  generator; pass a seed or a ``SeedSequence``);
- module-level ``np.random.<dist>`` functions (``np.random.random``,
  ``np.random.randint``, ``np.random.seed``, ...) — they share the
  hidden legacy global state;
- bare ``random.<fn>`` calls on the stdlib module (``random.random``,
  ``random.randrange``, ``random.seed``, ...), including no-argument
  ``random.Random()``.

Seeded construction — ``default_rng(seed)``, ``Random(12345)``,
``SeedSequence``/bit-generator classes — is fine.  Intentionally
entropic sites (e.g. the ``seed=None`` convenience path in
``util/rng.py``) carry ``# repro-lint: disable=RPL001 -- reason``.
"""

from __future__ import annotations

import ast
from typing import List

from tools.repro_lint.diagnostics import Diagnostic
from tools.repro_lint.imports import dotted_target

#: numpy.random attributes that construct explicit generator objects
#: (seeded or seedable) rather than drawing from the global stream.
_NP_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # legacy but explicit-instance; seededness is its own affair
}


class UnseededGlobalRng:
    id = "RPL001"
    title = "no unseeded global RNG; thread a Generator/Random instance"

    def check(self, ctx) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []

        def flag(node: ast.Call, message: str) -> None:
            diagnostics.append(
                Diagnostic(
                    ctx.display, node.lineno, node.col_offset,
                    self.id, message,
                )
            )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_target(node.func, ctx.aliases)
            if target is None:
                continue
            if target == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    flag(
                        node,
                        "default_rng() without a seed draws fresh OS"
                        " entropy; pass a seed/SeedSequence or thread a"
                        " Generator from the caller",
                    )
            elif target.startswith("numpy.random."):
                tail = target.split(".", 2)[2]
                if "." not in tail and tail not in _NP_CONSTRUCTORS:
                    flag(
                        node,
                        f"numpy.random.{tail}() draws from the hidden"
                        " process-global stream; use an explicit"
                        " Generator instance",
                    )
            elif target == "random.Random":
                if not node.args and not node.keywords:
                    flag(
                        node,
                        "random.Random() without a seed draws fresh OS"
                        " entropy; pass a seed or thread a Random from"
                        " the caller",
                    )
            elif target.startswith("random.") and target.count(".") == 1:
                tail = target.split(".", 1)[1]
                flag(
                    node,
                    f"random.{tail}() uses the process-global stdlib"
                    " stream; use an explicit random.Random instance",
                )
        return diagnostics
