"""RPL003 — thread-core tasks stay free of non-reentrant state.

PR 7's thread executor runs ``@thread_core`` tasks concurrently while
ctypes has released the GIL inside the native kernels.  The decorators
in :mod:`repro.util.reentrancy` record the contract; this rule makes
it permanent: a function marked ``@thread_core`` must not

- declare ``global`` (writing module globals races across tasks), nor
- call any function marked ``@non_reentrant(reason)`` — collected
  across *all* scanned files in a pre-pass, so marking a helper
  non-reentrant in one module immediately protects every thread core
  that calls it from anywhere.

Matching is by terminal name (``_worker_init``, ``base.set_default_backend``
and ``set_default_backend`` all hit a registered ``set_default_backend``),
which errs on the safe side for the handful of audited names involved.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from tools.repro_lint.diagnostics import Diagnostic


def _decorator_name(node: ast.expr) -> str:
    """Terminal name of a decorator expression (call or bare)."""
    if isinstance(node, ast.Call):
        node = node.func
    while isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _call_name(node: ast.Call) -> str:
    """Terminal name of a call target (``pkg.mod.fn`` -> ``fn``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class ThreadCoreReentrancy:
    id = "RPL003"
    title = "@thread_core functions: no globals, no @non_reentrant calls"

    def __init__(self) -> None:
        #: non-reentrant function name -> "path:line" of its marking.
        self._non_reentrant: Dict[str, str] = {}

    def collect(self, ctx) -> None:
        """Pre-pass: register every ``@non_reentrant`` function name."""
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for decorator in node.decorator_list:
                if _decorator_name(decorator) == "non_reentrant":
                    self._non_reentrant[node.name] = (
                        f"{ctx.display}:{node.lineno}"
                    )

    def check(self, ctx) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not any(
                _decorator_name(decorator) == "thread_core"
                for decorator in node.decorator_list
            ):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Global):
                    diagnostics.append(
                        Diagnostic(
                            ctx.display, inner.lineno, inner.col_offset,
                            self.id,
                            f"thread-core task {node.name!r} declares"
                            f" global {', '.join(inner.names)}; module"
                            " globals race across concurrent tasks —"
                            " pass state through arguments",
                        )
                    )
                elif isinstance(inner, ast.Call):
                    name = _call_name(inner)
                    marked_at = self._non_reentrant.get(name)
                    if marked_at is not None:
                        diagnostics.append(
                            Diagnostic(
                                ctx.display, inner.lineno,
                                inner.col_offset, self.id,
                                f"thread-core task {node.name!r} calls"
                                f" {name}(), marked @non_reentrant at"
                                f" {marked_at}; it mutates cross-thread"
                                " state and must not run inside"
                                " concurrent tasks",
                            )
                        )
        return diagnostics
