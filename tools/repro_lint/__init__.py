"""repro-lint: AST-based checker for this repo's reproducibility contracts.

The repo's value is that every layer is bit-reproducible — the
int64-exact draw protocol, SeedSequence spawn-key shard streams,
picklable spawn tasks, reentrant GIL-releasing C kernels.  Those
contracts used to live only in runtime torture suites and prose;
``repro-lint`` encodes them as named static rules with ``file:line``
diagnostics so a violation fails in seconds at lint time instead of
hours later under a lucky hypothesis seed.

Stdlib only (``ast`` + ``tokenize``); run as::

    python -m tools.repro_lint src tests benchmarks examples

Rules (see ``tools/repro_lint/rules/`` and docs/architecture.md):

=======  ==============================================================
RPL001   no unseeded global RNG (``np.random.default_rng()`` no-args,
         ``np.random.<dist>`` module functions, bare ``random.<fn>``)
RPL002   callables handed to spawn-pool APIs must be module-level
         functions (picklability), never lambdas/closures/locals
RPL003   ``@thread_core`` functions must not write module globals or
         call ``@non_reentrant`` helpers (GIL-safety registry)
RPL004   ctypes declarations in ``_native.py`` must agree with the
         ``repro_*`` prototypes in ``_kernels.c`` (arity + types)
RPL005   no wall-clock / OS entropy / set-iteration nondeterminism
         inside ``src/repro/sampling/`` and ``src/repro/estimators/``
=======  ==============================================================

Intentional violations are silenced line by line with a mandatory
reason::

    # repro-lint: disable=RPL001 -- benchmarks time the unseeded path

``RPL000`` marks tool-level problems (unparseable file, malformed
``disable`` comment) and cannot itself be suppressed.
"""

from tools.repro_lint.diagnostics import Diagnostic, TOOL_RULE
from tools.repro_lint.engine import run

__all__ = ["Diagnostic", "TOOL_RULE", "run"]
