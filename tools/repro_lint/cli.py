"""Command-line front end: ``python -m tools.repro_lint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.repro_lint.engine import run
from tools.repro_lint.rules import RULE_SUMMARIES

_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "Check the repo's reproducibility contracts (RPL001-RPL005)"
            " statically; exits non-zero on any diagnostic."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: the existing"
            f" subset of {', '.join(_DEFAULT_PATHS)})"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    arguments = parser.parse_args(argv)
    if arguments.list_rules:
        for rule_id, title in sorted(RULE_SUMMARIES.items()):
            print(f"{rule_id}  {title}")
        return 0
    if arguments.paths:
        paths = [Path(p) for p in arguments.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                "repro-lint: no such path:"
                f" {', '.join(str(p) for p in missing)}",
                file=sys.stderr,
            )
            return 2
    else:
        paths = [Path(p) for p in _DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print(
                "repro-lint: none of the default paths"
                f" ({', '.join(_DEFAULT_PATHS)}) exist here",
                file=sys.stderr,
            )
            return 2
    diagnostics = run(paths, root=Path.cwd())
    for diagnostic in diagnostics:
        print(diagnostic.render())
    count = len(diagnostics)
    if count:
        print(
            f"repro-lint: {count} diagnostic{'s' if count != 1 else ''}",
            file=sys.stderr,
        )
        return 1
    return 0
