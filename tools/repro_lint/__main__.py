"""``python -m tools.repro_lint`` entry point."""

from tools.repro_lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
