"""File discovery, per-module contexts, and the two-phase rule driver."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from tools.repro_lint.diagnostics import (
    Diagnostic,
    Suppressions,
    TOOL_RULE,
    parse_suppressions,
)
from tools.repro_lint.imports import collect_aliases
from tools.repro_lint.rules import build_rules

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", "build"}


@dataclass
class ModuleContext:
    """Everything the rules need to know about one parsed file."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    aliases: Dict[str, str]
    suppressions: Suppressions


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through as-is)."""
    found: List[Path] = []
    for path in paths:
        if path.is_file():
            found.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS:
                    continue
                found.append(candidate)
    return found


def _display(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_context(
    path: Path, root: Optional[Path] = None
) -> "ModuleContext | Diagnostic":
    """Parse one file; a syntax error becomes an RPL000 diagnostic."""
    display = _display(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return Diagnostic(
            display, 1, 0, TOOL_RULE, f"cannot read file: {error}"
        )
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        return Diagnostic(
            display, error.lineno or 1, (error.offset or 1) - 1,
            TOOL_RULE, f"syntax error: {error.msg}",
        )
    return ModuleContext(
        path=path,
        display=display,
        source=source,
        tree=tree,
        aliases=collect_aliases(tree),
        suppressions=parse_suppressions(display, source),
    )


def run(
    paths: Iterable[Path], root: Optional[Path] = None
) -> List[Diagnostic]:
    """Lint every file under ``paths``; sorted surviving diagnostics.

    Two phases: each rule's optional ``collect`` pass sees *all*
    modules first (RPL003 registers ``@non_reentrant`` names across
    files), then ``check`` runs per module.  Suppression comments are
    applied last, so a ``disable`` silences exactly the named rules on
    its governed line; malformed suppressions surface as RPL000.
    """
    contexts: List[ModuleContext] = []
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(
        [Path(p) for p in paths]
    ):
        loaded = load_context(path, root)
        if isinstance(loaded, Diagnostic):
            diagnostics.append(loaded)
        else:
            contexts.append(loaded)
    rules = build_rules()
    for rule in rules:
        collect = getattr(rule, "collect", None)
        if collect is not None:
            for context in contexts:
                collect(context)
    for context in contexts:
        diagnostics.extend(context.suppressions.malformed)
        for rule in rules:
            for diagnostic in rule.check(context):
                if context.suppressions.is_suppressed(
                    diagnostic.rule, diagnostic.line
                ):
                    continue
                diagnostics.append(diagnostic)
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics
