"""Import-alias tracking and dotted-call-target resolution.

The rules reason about *what module function* a call reaches —
``np.random.random`` is ``numpy.random.random`` however numpy was
aliased, and ``from os import urandom`` makes a bare ``urandom(8)``
an ``os.urandom`` call.  This module resolves both, conservatively:
a name that is not an import binding resolves to ``None`` (method
calls on local variables are never mistaken for module functions).
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted module (or module attr) path.

    ``import numpy as np`` maps ``np -> numpy``; ``import numpy.random``
    maps ``numpy -> numpy`` (attribute access walks the rest); ``from
    datetime import datetime`` maps ``datetime -> datetime.datetime``.
    Relative imports are skipped — they never reach the stdlib/numpy
    modules the rules care about.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if not node.module or node.level:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def dotted_target(
    node: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    """The full dotted path a call target resolves to, or ``None``.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``"numpy.random.default_rng"``; ``rng.random`` resolves to ``None``
    because ``rng`` is not an import binding.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))
