"""Figure 13 — sparse id space: FS robust to low hit ratios."""

from conftest import run_once

from repro.experiments.figures import fig13


def test_fig13(benchmark, save_result):
    result = run_once(benchmark, fig13, scale=0.2, runs=40, dimension=50)
    save_result("fig13", result.render())
    fs = next(name for name in result.curves if name.startswith("FS"))
    vertex = next(
        name for name in result.curves if name.startswith("RandomVertex")
    )
    edge = next(
        name for name in result.curves if name.startswith("RandomEdge")
    )
    # FS outperforms hit-ratio-limited random edge sampling overall and
    # random vertex sampling everywhere above the smallest degrees
    # (Section 6.4's conclusion).
    assert result.mean_error(fs) < result.mean_error(edge)
    assert result.tail_mean_error(
        fs, result.average_degree
    ) < result.tail_mean_error(vertex, result.average_degree)
