"""Figure 12 — RE vs RV vs FS NMSE at 100% hit ratio, plus the
Section 3 closed-form overlays."""

from conftest import run_once

from repro.experiments.figures import fig12


def test_fig12(benchmark, save_result):
    result = run_once(benchmark, fig12, scale=0.25, runs=40, dimension=50)
    save_result("fig12", result.render())
    fs = "FS(m=50)"
    mean_degree = sum(k * v for k, v in result.truth.items())

    def tail(method):
        return result.tail_mean_error(method, 2 * mean_degree)

    def head(method):
        curve = result.curves[method]
        low = [k for k in curve if 0 < k < 0.5 * mean_degree]
        return sum(curve[k] for k in low) / len(low)

    # The eq. (3)/(4) crossover: edge sampling wins in the tail,
    # vertex sampling below the mean.
    assert tail("RandomEdge") < tail("RandomVertex")
    assert head("RandomVertex") < head("RandomEdge")
    # FS tracks random edge sampling in the tail.
    assert tail(fs) < tail("RandomVertex")
    # The analytic overlays agree with the simulated independent
    # samplers within a factor ~2 on average (same shape).
    analytic_rv = result.curves["analytic RV (eq.4)"]
    simulated_rv = result.curves["RandomVertex"]
    shared = [k for k in analytic_rv if k in simulated_rv and k > 0]
    ratio = sum(simulated_rv[k] / analytic_rv[k] for k in shared) / len(shared)
    assert 0.5 < ratio < 2.0
