"""Figure 14 — NMSE of special-interest group densities."""

from conftest import run_once

from repro.experiments.figures import fig14


def test_fig14(benchmark, save_result):
    result = run_once(
        benchmark, fig14, scale=0.25, runs=40, dimension=100, top_groups=8
    )
    save_result("fig14", result.render())
    fs = "FS(m=100)"
    # FS is clearly superior to both baselines on group densities.
    assert result.mean_error(fs) < result.mean_error("SingleRW")
    assert result.mean_error(fs) < result.mean_error("MultipleRW(m=100)")
