"""Table 3 — global clustering coefficient estimates."""

from conftest import run_once

from repro.experiments.tables import table3


def test_table3(benchmark, save_result):
    result = run_once(
        benchmark, table3, scale=0.12, runs=25, dimension=30,
        budget_fraction=0.25,
    )
    save_result("table3", result.render())
    assert len(result.rows) == 2
    for row in result.rows:
        # every method lands near C (the paper: "small difference"),
        for _method, mean in row.mean_estimate.items():
            assert abs(mean - row.true_c) < 0.6 * row.true_c + 0.05
        # and FS beats MultipleRW on every graph (the paper's Table 3
        # ordering; FS vs SingleRW is a tie on the connected graph).
        assert row.error["FS"] < row.error["MultipleRW"]
    fs_total = sum(row.error["FS"] for row in result.rows)
    srw_total = sum(row.error["SingleRW"] for row in result.rows)
    assert fs_total <= 1.1 * srw_total
