"""Table 1 — dataset summary regeneration."""

from conftest import run_once

from repro.experiments.tables import table1


def test_table1(benchmark, save_result):
    result = run_once(benchmark, table1, scale=0.2)
    save_result("table1", result.render())
    names = {s.name for s in result.summaries}
    assert {"flickr-like", "livejournal-like", "youtube-like"} <= names
    flickr = next(s for s in result.summaries if s.name == "flickr-like")
    # the disconnection structure Table 1 documents
    assert flickr.lcc_size < flickr.num_vertices
    assert flickr.num_components > 1
    lj = next(s for s in result.summaries if s.name == "livejournal-like")
    assert lj.lcc_size / lj.num_vertices > flickr.lcc_size / flickr.num_vertices
    internet = next(
        s for s in result.summaries if s.name == "internet-rlt-like"
    )
    # router-level graph is the low-degree one, as in the paper
    assert internet.average_degree < flickr.average_degree
