"""Figure 10 — degree CNMSE on GAB (loosely connected stress test)."""

from conftest import run_once

from repro.experiments.figures import fig10


def test_fig10(benchmark, save_result):
    result = run_once(benchmark, fig10, scale=0.3, runs=40, dimension=50)
    save_result("fig10", result.render())
    fs = "FS(m=50)"
    # The loosely connected case: FS wins clearly against both.
    assert result.mean_error(fs) < 0.85 * result.mean_error("SingleRW")
    assert result.mean_error(fs) < 0.85 * result.mean_error(
        "MultipleRW(m=50)"
    )
