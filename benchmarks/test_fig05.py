"""Figure 5 — FS vs baselines on the full (disconnected) Flickr."""

from conftest import run_once

from repro.experiments.figures import fig4, fig5


def test_fig5(benchmark, save_result):
    result = run_once(benchmark, fig5, scale=0.25, runs=40, dimension=50)
    save_result("fig05", result.render())
    fs = "FS(m=50)"
    single = result.mean_error("SingleRW")
    multiple = result.mean_error("MultipleRW(m=50)")
    assert result.mean_error(fs) < single
    assert result.mean_error(fs) < multiple


def test_fig5_gap_wider_than_fig4(benchmark, save_result):
    """Contrasting Figures 4 and 5: disconnected components widen the
    FS advantage over SingleRW."""
    lcc = fig4(scale=0.25, runs=40, dimension=50, root_seed=504)
    full = run_once(
        benchmark, fig5, scale=0.25, runs=40, dimension=50, root_seed=505
    )
    save_result("fig05_vs_fig04", full.render() + "\n\n" + lcc.render())
    fs = "FS(m=50)"
    lcc_ratio = lcc.mean_error("SingleRW") / lcc.mean_error(fs)
    full_ratio = full.mean_error("SingleRW") / full.mean_error(fs)
    assert full_ratio > lcc_ratio
