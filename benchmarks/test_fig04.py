"""Figure 4 — FS vs baselines on the Flickr LCC (no disconnection)."""

from conftest import run_once

from repro.experiments.figures import fig4


def test_fig4(benchmark, save_result):
    result = run_once(benchmark, fig4, scale=0.25, runs=40, dimension=50)
    save_result("fig04", result.render())
    fs = "FS(m=50)"
    # FS outperforms both baselines even on a connected graph.
    assert result.mean_error(fs) < result.mean_error("SingleRW")
    assert result.mean_error(fs) < result.mean_error("MultipleRW(m=50)")
    # And SingleRW beats uniformly seeded MultipleRW (Figure 4's
    # "interesting to note").
    assert result.mean_error("SingleRW") < 1.35 * result.mean_error(
        "MultipleRW(m=50)"
    )
