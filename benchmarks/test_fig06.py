"""Figure 6 — sample paths of theta_hat_1 on the full Flickr."""

from conftest import run_once

from repro.experiments.figures import fig6


def test_fig6(benchmark, save_result):
    result = run_once(
        benchmark, fig6, scale=0.25, dimension=50, num_paths=4
    )
    save_result("fig06", result.render())
    truth = result.true_value
    # Every FS path lands near theta_1; SingleRW paths scatter more
    # (walkers trapped in small components mis-estimate).
    fs_worst = max(abs(v - truth) for v in result.final_values("FS"))
    single_worst = max(
        abs(v - truth) for v in result.final_values("SingleRW")
    )
    assert fs_worst < 0.1
    assert fs_worst <= single_worst
