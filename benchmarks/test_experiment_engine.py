"""Experiment-engine gates: single-walk sweeps and replicate fan-out.

Two acceptance gates for the session-native replication engine, both
on the paper's wide-frontier FS regime over a ~100k-node
Barabasi-Albert graph.  Like ``test_sharded_speed.py`` this file pins
its scale — the gates are defined on these workloads, so
``REPRO_BENCH_SCALE`` does not shrink them:

- ``test_fs_engine_budget_sweep`` — a fig4-style 8-point budget sweep
  through :func:`degree_error_budget_sweep` (one resumed session per
  replicate) must beat the pre-engine path (re-sampling the full
  budget at every point through ``degree_error_experiment``) by >= 2x.
  This is algorithmic — a k-point linear schedule costs ~(k+1)/2 more
  walking when re-sampled — so it is asserted whenever the native
  kernels are available.  The engine timing is also recorded by
  pytest-benchmark, which puts it under the CI trend gate
  (``tools/check_bench_trend.py``, pattern ``test_fs_``).
- ``test_fs_engine_procs_scaling`` — the same sweep shape with a
  heavier per-replicate walk, fanned with ``procs=4``, must run
  >= 1.5x faster than the engine at ``procs=1`` (inline pooled path,
  identical streams).  Asserted only with >= 4 CPU cores and native
  kernels (on fewer cores the spawn tax has nothing to amortize
  against — a 1-core box measures ~0.8x); measured and recorded
  regardless.
- ``test_fs_engine_thread_fanout`` — the same fan-out workload at 4
  workers, ``executor="thread"`` vs ``executor="spawn"``.  The thread
  backend pays no spawn startup, no graph spill and no pickle
  round-trips, so it must be >= 2x faster than spawn; asserted only
  with >= 4 CPU cores and native kernels (the gate is about overlap,
  which needs real cores and GIL-releasing kernels).  The thread
  timing is recorded by pytest-benchmark, which puts it under the CI
  trend gate (``tools/check_bench_trend.py``, pattern ``test_fs_``).

- ``test_fs_fused_checkpoint_drain`` — a fig4-style 8-point anytime
  sweep (10^5 FS steps per replicate, degree-PMF + average-degree
  accumulators) run through the engine's fused
  ``advance_into`` path vs the same plan forced onto the
  ``take_trace()``/``update()`` drain path with ``REPRO_NO_FUSED=1``.
  The fused path never materializes the O(steps) trace increments —
  its per-checkpoint scratch is the O(max_degree) count block — and
  must be >= 2x faster with native kernels; the rows must match the
  drained rows bit for bit regardless.

Results land in ``results/engine_speed.txt``; bit-equality of the
thread, spawn and inline sweeps is asserted unconditionally.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.estimators.streaming import (
    StreamingAverageDegree,
    StreamingDegreePMF,
)
from repro.experiments.degree_errors import (
    degree_error_budget_sweep,
    degree_error_experiment,
)
from repro.experiments.engine import ExperimentPlan, default_budget_schedule, run_plan
from repro.generators.ba import barabasi_albert
from repro.graph.csr import get_csr
from repro.sampling import _native
from repro.sampling.frontier import FrontierSampler
from repro.sampling.fused import FusedNeeds, merge_needs

from conftest import run_once

NUM_VERTICES = 100_000
SWEEP_DIMENSION = 1_000
SWEEP_BUDGET = 40_000.0
SWEEP_POINTS = 8
SWEEP_REPLICATES = 8
SWEEP_FLOOR = 2.0

FUSED_DIMENSION = 1_000
FUSED_STEPS = 100_000
FUSED_POINTS = 8
FUSED_REPLICATES = 4
FUSED_FLOOR = 2.0

PROCS = 4
PROCS_DIMENSION = 3_000
PROCS_BUDGET = 400_000.0
PROCS_REPLICATES = 8
PROCS_FLOOR = 1.5
THREAD_FLOOR = 2.0


@pytest.fixture(scope="module")
def ba_graph():
    return get_csr(barabasi_albert(NUM_VERTICES, 3, rng=1))


def test_fs_engine_budget_sweep(benchmark, ba_graph, save_result):
    """Engine sweep (one walk per replicate) vs per-point re-sampling."""
    budgets = default_budget_schedule(SWEEP_BUDGET, SWEEP_POINTS)
    samplers = {"FS": FrontierSampler(SWEEP_DIMENSION)}

    def engine_sweep():
        return degree_error_budget_sweep(
            ba_graph,
            samplers,
            budgets,
            runs=SWEEP_REPLICATES,
            root_seed=7,
            backend="csr",
        )

    started = time.perf_counter()
    sweep = run_once(benchmark, engine_sweep)
    engine_seconds = time.perf_counter() - started

    started = time.perf_counter()
    per_point = {
        budget: degree_error_experiment(
            ba_graph,
            samplers,
            budget,
            runs=SWEEP_REPLICATES,
            root_seed=7,
            backend="csr",
        )
        for budget in budgets
    }
    resample_seconds = time.perf_counter() - started
    ratio = resample_seconds / engine_seconds

    # Same statistics at the final budget (FS sessions are
    # chunk-invisible, so the sweep's last point IS the one-shot run).
    final = budgets[-1]
    for degree, value in per_point[final].curves["FS"].items():
        assert abs(value - sweep.at(final).curves["FS"][degree]) <= 1e-9

    save_result(
        "engine_speed",
        "\n".join(
            [
                f"Experiment engine, fig4-style sweep ({SWEEP_POINTS}"
                f" budget points to B={SWEEP_BUDGET:.0f},"
                f" m={SWEEP_DIMENSION}, {SWEEP_REPLICATES} replicates,"
                f" BA n={NUM_VERTICES},"
                f" native kernels: {_native.available()})",
                f"  per-point re-sampling:   {resample_seconds * 1e3:8.1f} ms",
                f"  engine single-walk:      {engine_seconds * 1e3:8.1f} ms"
                f" ({ratio:.2f}x, floor {SWEEP_FLOOR}x)",
                f"  steps walked (engine):   {sweep.steps_walked['FS']:,}",
            ]
        ),
    )
    if not _native.available():
        pytest.skip(
            "no native kernels: the interpreted fallback's constant"
            f" factors dominate; measured {ratio:.2f}x (not gated)"
        )
    assert ratio >= SWEEP_FLOOR, (
        f"engine sweep is only {ratio:.2f}x the per-point re-sampling"
        f" path (floor {SWEEP_FLOOR}x)"
    )


def test_fs_engine_procs_scaling(ba_graph, results_dir):
    """Engine at 4 worker processes vs the inline procs=1 path."""
    budgets = [PROCS_BUDGET / 2, PROCS_BUDGET]
    samplers = {"FS": FrontierSampler(PROCS_DIMENSION)}

    def sweep(procs):
        return degree_error_budget_sweep(
            ba_graph,
            samplers,
            budgets,
            runs=PROCS_REPLICATES,
            root_seed=7,
            procs=procs,
        )

    started = time.perf_counter()
    inline = sweep(1)
    inline_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pooled = sweep(PROCS)
    pooled_seconds = time.perf_counter() - started
    ratio = inline_seconds / pooled_seconds

    # procs is a deployment knob: identical error curves, bit for bit.
    for budget in budgets:
        assert inline.at(budget).curves == pooled.at(budget).curves
    assert inline.steps_walked == pooled.steps_walked

    cores = os.cpu_count() or 1
    gated = _native.available() and cores >= PROCS
    report = "\n".join(
        [
            "",
            f"Engine replicate fan-out (B={PROCS_BUDGET:.0f},"
            f" m={PROCS_DIMENSION}, {PROCS_REPLICATES} replicates,"
            f" {cores} cores)",
            f"  engine, procs=1 inline:  {inline_seconds * 1e3:8.1f} ms",
            f"  engine, procs={PROCS} spawn:   {pooled_seconds * 1e3:8.1f} ms"
            f" ({ratio:.2f}x, floor {PROCS_FLOOR}x"
            f"{'' if gated else ', record only'})",
        ]
    )
    path = results_dir / "engine_speed.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(report + "\n")

    if not _native.available():
        pytest.skip(
            "no native kernels: worker processes run the pure-Python"
            f" fallback; measured {ratio:.2f}x (not comparable)"
        )
    if cores < PROCS:
        pytest.skip(
            f"only {cores} CPU core(s): the {PROCS}-process gate needs"
            f" {PROCS}; measured {ratio:.2f}x"
        )
    assert ratio >= PROCS_FLOOR, (
        f"engine at {PROCS} procs is only {ratio:.2f}x the inline"
        f" procs=1 sweep (floor {PROCS_FLOOR}x)"
    )


def test_fs_engine_thread_fanout(benchmark, ba_graph, results_dir):
    """Thread executor vs spawn executor on the same 4-worker fan-out."""
    budgets = [PROCS_BUDGET / 2, PROCS_BUDGET]
    samplers = {"FS": FrontierSampler(PROCS_DIMENSION)}

    def sweep(procs, executor=None):
        return degree_error_budget_sweep(
            ba_graph,
            samplers,
            budgets,
            runs=PROCS_REPLICATES,
            root_seed=7,
            procs=procs,
            executor=executor,
        )

    started = time.perf_counter()
    threaded = run_once(benchmark, lambda: sweep(PROCS, executor="thread"))
    thread_seconds = time.perf_counter() - started

    started = time.perf_counter()
    spawned = sweep(PROCS, executor="spawn")
    spawn_seconds = time.perf_counter() - started
    ratio = spawn_seconds / thread_seconds

    inline = sweep(1)

    # The executor moves work between workers; it never draws.  All
    # three backends must produce the same sweep, bit for bit.
    for budget in budgets:
        assert threaded.at(budget).curves == spawned.at(budget).curves
        assert threaded.at(budget).curves == inline.at(budget).curves
    assert threaded.steps_walked == spawned.steps_walked
    assert threaded.steps_walked == inline.steps_walked

    cores = os.cpu_count() or 1
    gated = _native.available() and cores >= PROCS
    report = "\n".join(
        [
            "",
            f"Engine thread fan-out (B={PROCS_BUDGET:.0f},"
            f" m={PROCS_DIMENSION}, {PROCS_REPLICATES} replicates,"
            f" procs={PROCS}, {cores} cores,"
            f" native kernels: {_native.available()})",
            f"  engine, executor=thread: {thread_seconds * 1e3:8.1f} ms",
            f"  engine, executor=spawn:  {spawn_seconds * 1e3:8.1f} ms"
            f" ({ratio:.2f}x, floor {THREAD_FLOOR}x"
            f"{'' if gated else ', record only'})",
        ]
    )
    path = results_dir / "engine_speed.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(report + "\n")

    if not _native.available():
        pytest.skip(
            "no native kernels: threads serialize on the GIL in the"
            f" pure-Python fallback; measured {ratio:.2f}x (not gated)"
        )
    if cores < PROCS:
        pytest.skip(
            f"only {cores} CPU core(s): thread-vs-spawn overlap needs"
            f" {PROCS}; measured {ratio:.2f}x"
        )
    assert ratio >= THREAD_FLOOR, (
        f"thread executor is only {ratio:.2f}x the spawn executor on"
        f" the {PROCS}-worker fan-out (floor {THREAD_FLOOR}x)"
    )


class _DegreeBundle:
    """The paper's fig4 accumulator pair, as one fuse-capable part."""

    def __init__(self, graph):
        self.pmf = StreamingDegreePMF(graph)
        self.average = StreamingAverageDegree(graph)

    def update(self, increment):
        self.pmf.update(increment)
        self.average.update(increment)
        return self

    def fused_needs(self):
        return merge_needs((self.pmf, self.average))

    def absorb_block(self, block):
        self.pmf.absorb_block(block)
        self.average.absorb_block(block)
        return self


def test_fs_fused_checkpoint_drain(benchmark, ba_graph, results_dir):
    """Fused advance_into vs the take_trace()/update() drain path."""
    checkpoints = [
        FUSED_STEPS * (i + 1) // FUSED_POINTS for i in range(FUSED_POINTS)
    ]

    def snapshot(method, bundle, checkpoint):
        return (bundle.average.estimate(), bundle.pmf.estimate())

    plan = ExperimentPlan(
        title="fused-checkpoint-drain",
        graph=ba_graph,
        samplers={"FS": FrontierSampler(FUSED_DIMENSION)},
        budgets=checkpoints,
        accumulator=lambda method: _DegreeBundle(ba_graph),
        snapshot=snapshot,
        schedule="steps",
        root_seed=7,
    )

    # The degree-statistics bundle needs only the per-degree counts, so
    # every block the engine folds is the (max_degree + 1) int64 array —
    # O(max_degree) peak increment scratch, not an O(steps) trace.
    assert _DegreeBundle(ba_graph).fused_needs() == FusedNeeds(
        degree_counts=True
    )

    started = time.perf_counter()
    fused = run_once(
        benchmark, lambda: run_plan(plan, replicates=FUSED_REPLICATES)
    )
    fused_seconds = time.perf_counter() - started

    os.environ["REPRO_NO_FUSED"] = "1"
    try:
        started = time.perf_counter()
        drained = run_plan(plan, replicates=FUSED_REPLICATES)
        drained_seconds = time.perf_counter() - started
    finally:
        del os.environ["REPRO_NO_FUSED"]
    ratio = drained_seconds / fused_seconds

    # Fusion is a memory/speed knob, never a statistics change: every
    # snapshot (average-degree estimate and full PMF dict) matches the
    # drained path bit for bit.
    assert fused.methods["FS"].rows == drained.methods["FS"].rows
    assert (
        fused.methods["FS"].steps_taken == drained.methods["FS"].steps_taken
    )

    report = "\n".join(
        [
            "",
            f"Fused checkpoint sweep ({FUSED_POINTS} points to"
            f" {FUSED_STEPS:,} FS steps, m={FUSED_DIMENSION},"
            f" {FUSED_REPLICATES} replicates,"
            f" native kernels: {_native.available()})",
            f"  drain (take_trace/update): {drained_seconds * 1e3:8.1f} ms",
            f"  fused advance_into:        {fused_seconds * 1e3:8.1f} ms"
            f" ({ratio:.2f}x, floor {FUSED_FLOOR}x)",
        ]
    )
    path = results_dir / "engine_speed.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(report + "\n")

    if not _native.available():
        pytest.skip(
            "no native kernels: both paths run interpreted numpy with"
            f" comparable constants; measured {ratio:.2f}x (not gated)"
        )
    assert ratio >= FUSED_FLOOR, (
        f"fused advance_into is only {ratio:.2f}x the drain path"
        f" (floor {FUSED_FLOOR}x)"
    )
