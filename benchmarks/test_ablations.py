"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.experiments.ablations import (
    burn_in_ablation,
    dimension_sweep,
    fs_vs_distributed,
    metropolis_vs_rw,
    walker_selection_ablation,
)


def test_dimension_sweep(benchmark, save_result):
    """Error decreases as the frontier dimension grows (Theorem 5.4):
    the m=1 walk is the worst configuration and large m the best."""
    result = run_once(
        benchmark, dimension_sweep, scale=0.3, runs=40,
        dimensions=(1, 4, 16, 64, 256),
    )
    save_result("ablation_dimension_sweep", result.render())
    errors = list(result.errors.values())
    assert errors[-1] < errors[0]  # m=256 beats m=1
    assert min(errors) == errors[-1] or min(errors) == errors[-2]


def test_walker_selection(benchmark, save_result):
    """Algorithm 1's degree-proportional walker choice beats the
    uniform-walker variant, which breaks the G^m equivalence."""
    result = run_once(
        benchmark, walker_selection_ablation, scale=0.3, runs=40
    )
    save_result("ablation_walker_selection", result.render())
    assert (
        result.errors["FS(degree selection)"]
        < result.errors["FS(uniform selection)"]
    )


def test_metropolis_vs_rw(benchmark, save_result):
    """The reweighted RW estimator is at least as accurate as the
    Metropolis-Hastings walk (Section 7 / [15, 29])."""
    result = run_once(benchmark, metropolis_vs_rw, scale=0.3, runs=40)
    save_result("ablation_metropolis_vs_rw", result.render())
    assert result.errors["RW + eq.(7)"] <= 1.1 * result.errors[
        "Metropolis-Hastings"
    ]


def test_burn_in(benchmark, save_result):
    """Burn-in cannot rescue a trapped walker (Section 4.3): FS with no
    burn-in beats SingleRW at every burn-in level on GAB."""
    result = run_once(benchmark, burn_in_ablation, scale=0.3, runs=40)
    save_result("ablation_burn_in", result.render())
    fs = result.errors["FS(m=64, no burn-in)"]
    for name, value in result.errors.items():
        if name.startswith("SingleRW"):
            assert fs < value


def test_fs_vs_distributed(benchmark, save_result):
    """Theorem 5.5: the distributed realization matches FS."""
    result = run_once(benchmark, fs_vs_distributed, scale=0.3, runs=40)
    save_result("ablation_fs_vs_dfs", result.render())
    fs = result.errors["FS (Algorithm 1)"]
    dfs = result.errors["Distributed FS"]
    assert abs(fs - dfs) < 0.25 * max(fs, dfs)
