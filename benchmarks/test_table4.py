"""Table 4 — worst-case transient vs stationary edge-sampling gap."""

from conftest import run_once

from repro.experiments.tables import table4


def test_table4(benchmark, save_result):
    result = run_once(
        benchmark, table4, graph_size=150, num_walkers=10, mc_runs=50_000
    )
    save_result("table4", result.render())
    assert len(result.rows) == 3
    # The Appendix B claim: FS's final-edge law is closer to the
    # stationary (uniform) edge law than both baselines'.  MRW is worse
    # on every graph; SRW in aggregate (single rows can sit within the
    # Monte Carlo max-statistic noise).
    for row in result.rows:
        assert row.gaps["FS"] < row.gaps["MRW"]
    fs_total = sum(row.gaps["FS"] for row in result.rows)
    srw_total = sum(row.gaps["SRW"] for row in result.rows)
    assert fs_total < srw_total
