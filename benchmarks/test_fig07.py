"""Figure 7 — LiveJournal-like out-degree CCDF (descriptive)."""

from conftest import run_once

from repro.experiments.figures import fig7


def test_fig7(benchmark, save_result):
    result = run_once(benchmark, fig7, scale=0.4)
    save_result("fig07", result.render())
    ccdf = result.ccdf
    assert max(ccdf) > 30  # heavy tail
    keys = sorted(ccdf)
    assert all(ccdf[a] >= ccdf[b] for a, b in zip(keys, keys[1:]))
