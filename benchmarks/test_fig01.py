"""Figure 1 — SingleRW beats uniformly seeded MultipleRW(10)."""

from conftest import run_once

from repro.experiments.figures import fig1


def test_fig1(benchmark, save_result):
    result = run_once(benchmark, fig1, scale=0.25, runs=40)
    save_result("fig01", result.render())
    # The Section 4.4 surprise: m independent walkers from uniform
    # seeds are *worse* than one walker.
    assert result.mean_error("SingleRW") < result.mean_error(
        "MultipleRW(m=10)"
    )
