"""Sharded-FS scaling gate: multi-process vs single-process throughput.

The workload is the paper's own wide-frontier regime — ``m = 1000``
walkers (the dimension the budget figures use), 10^5 merged FS steps
over a ~100k-node Barabasi-Albert graph.  Unlike the other benchmarks
this one pins its scale: the acceptance gate is defined on the
10^5-step workload, so ``REPRO_BENCH_SCALE`` does not shrink it (the
whole run is a few seconds).

Gate: with the native kernels available and >= 4 CPU cores, the
sharded engine at 4 worker processes must sustain >= 2x the
steady-state throughput of the single-process csr ``FrontierSampler``
on the identical workload.  On narrower machines the measurement still
runs and is recorded, but the multi-core assertion is skipped — there
is nothing honest a 1-core box can assert about 4-way parallelism.

Bit-reproducibility is asserted unconditionally: the merged trace for
a fixed ``(seed, n_procs)`` is identical across repeated runs, and
identical between shard-count 1 and 4 (the per-walker stream scheme
guarantees shard-count invariance; see ``sampling/sharded.py``).
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from repro.generators.ba import barabasi_albert
from repro.graph.csr import get_csr
from repro.sampling import _native
from repro.sampling.frontier import FrontierSampler
from repro.sampling.sharded import ShardedFrontierSampler

NUM_VERTICES = 100_000
NUM_STEPS = 100_000
DIMENSION = 1_000
PROCS = 4
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def ba_graph():
    graph = barabasi_albert(NUM_VERTICES, 3, rng=1)
    return get_csr(graph)


@pytest.fixture(scope="module")
def walker_seeds():
    picker = random.Random(3)
    return [picker.randrange(NUM_VERTICES) for _ in range(DIMENSION)]


def best_of(repeats, fn):
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


def steady_seconds(session, repeats=3):
    """Best-of steady-state cost of one 10^5-step advance (drained)."""

    def advance_once():
        session.advance(NUM_STEPS)
        session.take_trace()

    session.advance(2_000)  # warm caches, pool workers, mmap pages
    session.take_trace()
    return best_of(repeats, advance_once)


def test_sharded_merge_is_bit_reproducible(ba_graph, walker_seeds):
    """Fixed (seed, n_procs): repeated runs and shard counts agree."""
    sampler_one = ShardedFrontierSampler(
        DIMENSION, procs=1, use_processes=False
    )
    sampler_four = ShardedFrontierSampler(
        DIMENSION, procs=PROCS, use_processes=False
    )
    steps = 20_000  # parity leg: enough to cross many event blocks
    first = sampler_one.sample_from(ba_graph, walker_seeds, steps, rng=7)
    again = sampler_one.sample_from(ba_graph, walker_seeds, steps, rng=7)
    sharded = sampler_four.sample_from(ba_graph, walker_seeds, steps, rng=7)
    for other in (again, sharded):
        assert (first.step_sources == other.step_sources).all()
        assert (first.step_targets == other.step_targets).all()
        assert (first.step_walkers == other.step_walkers).all()
        assert (first.step_times == other.step_times).all()
    assert np.all(np.diff(first.step_times) >= 0)


def test_sharded_fs_scaling(ba_graph, walker_seeds, save_result):
    fs_session = FrontierSampler(DIMENSION, backend="csr").start(
        ba_graph, rng=7, initial_vertices=walker_seeds
    )
    fs_seconds = steady_seconds(fs_session)

    inline = ShardedFrontierSampler(
        DIMENSION, procs=1, use_processes=False
    ).start(ba_graph, rng=7, initial_vertices=walker_seeds)
    inline_seconds = steady_seconds(inline)
    inline.close()

    pooled = ShardedFrontierSampler(DIMENSION, procs=PROCS).start(
        ba_graph, rng=7, initial_vertices=walker_seeds
    )
    pooled_seconds = steady_seconds(pooled)
    pooled.close()

    cores = os.cpu_count() or 1
    inline_ratio = fs_seconds / inline_seconds
    pooled_ratio = fs_seconds / pooled_seconds
    per_step = 1e6 / NUM_STEPS
    save_result(
        "sharded_speed",
        "\n".join(
            [
                f"Sharded FS throughput ({NUM_STEPS} steps, m={DIMENSION},"
                f" BA n={NUM_VERTICES}, {cores} cores,"
                f" native kernels: {_native.available()})",
                f"  single-process csr FS:   {fs_seconds * 1e3:8.1f} ms"
                f" ({fs_seconds * per_step:.2f} us/step)",
                f"  sharded, 1 proc inline:  {inline_seconds * 1e3:8.1f} ms"
                f" ({inline_ratio:.2f}x)",
                f"  sharded, {PROCS} procs spawn:  {pooled_seconds * 1e3:8.1f} ms"
                f" ({pooled_ratio:.2f}x, floor {SPEEDUP_FLOOR}x)",
            ]
        ),
    )
    if not _native.available():
        pytest.skip(
            "no native kernels: single-process FS runs its pure-Python"
            f" fallback, measured {pooled_ratio:.1f}x (not comparable)"
        )
    if cores < PROCS:
        pytest.skip(
            f"only {cores} CPU core(s): the {PROCS}-process gate needs"
            f" {PROCS}; measured {pooled_ratio:.2f}x pooled,"
            f" {inline_ratio:.2f}x inline"
        )
    assert pooled_ratio >= SPEEDUP_FLOOR, (
        f"sharded FS at {PROCS} procs is only {pooled_ratio:.2f}x the"
        f" single-process csr FS throughput (floor {SPEEDUP_FLOOR}x;"
        f" inline 1-proc ratio {inline_ratio:.2f}x)"
    )
