"""Backend speed: vectorized CSR fast path vs the interpreted walker.

Times 10^5 Frontier Sampling steps over a ~100k-node Barabasi-Albert
graph on both backends from the same pinned walker seeds, records both
into the pytest-benchmark report, and gates the regression: the CSR
backend must stay >= 5x faster than the list backend whenever the
native kernels are available (CI always has a C compiler).

The estimator layer is gated too: eq. (7) degree reweighting over the
``ArrayWalkTrace`` arrays must stay >= 10x faster than the tuple-loop
estimator on the same FS trace, and the two must agree to 1e-12 —
otherwise the walk speedup evaporates the moment anything is estimated.

``REPRO_BENCH_SCALE`` shrinks the graph and the step count together
for smoke runs (CI uses 0.05).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.estimators.degree import degree_pmf_from_trace
from repro.generators.ba import barabasi_albert
from repro.graph.csr import get_csr
from repro.sampling import _native
from repro.sampling.base import WalkTrace
from repro.sampling.frontier import FrontierSampler

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
NUM_VERTICES = max(2_000, int(100_000 * SCALE))
NUM_STEPS = max(2_000, int(100_000 * SCALE))
DIMENSION = 64
SPEEDUP_FLOOR = 5.0
ESTIMATOR_SPEEDUP_FLOOR = 10.0


@pytest.fixture(scope="module")
def ba_graph():
    graph = barabasi_albert(NUM_VERTICES, 3, rng=1)
    get_csr(graph)  # pay the one-off CSR conversion outside the timings
    return graph


@pytest.fixture(scope="module")
def walker_seeds():
    picker = random.Random(3)
    return [picker.randrange(NUM_VERTICES) for _ in range(DIMENSION)]


def run_list_backend(graph, seeds):
    sampler = FrontierSampler(DIMENSION, backend="list")
    return sampler.sample_from(graph, seeds, NUM_STEPS, rng=7)


def run_csr_backend(graph, seeds):
    sampler = FrontierSampler(DIMENSION, backend="csr")
    return sampler.sample_from(get_csr(graph), seeds, NUM_STEPS, rng=7)


def test_fs_list_backend(benchmark, ba_graph, walker_seeds):
    trace = benchmark.pedantic(
        run_list_backend, args=(ba_graph, walker_seeds), rounds=2,
        iterations=1,
    )
    assert trace.num_steps == NUM_STEPS


def test_fs_csr_backend(benchmark, ba_graph, walker_seeds):
    trace = benchmark.pedantic(
        run_csr_backend, args=(ba_graph, walker_seeds), rounds=5,
        iterations=1,
    )
    assert trace.num_steps == NUM_STEPS


def test_csr_backend_speedup(ba_graph, walker_seeds, save_result):
    def best_of(repeats, fn):
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn(ba_graph, walker_seeds)
            timings.append(time.perf_counter() - started)
        return min(timings)

    list_seconds = best_of(2, run_list_backend)
    csr_seconds = best_of(5, run_csr_backend)
    speedup = list_seconds / csr_seconds
    per_step = 1e6 / NUM_STEPS
    save_result(
        "backend_speed",
        "\n".join(
            [
                f"FS backend speed ({NUM_STEPS} steps, m={DIMENSION},"
                f" BA n={NUM_VERTICES})",
                f"  list backend: {list_seconds:.3f}s"
                f" ({list_seconds * per_step:.2f} us/step)",
                f"  csr backend:  {csr_seconds:.3f}s"
                f" ({csr_seconds * per_step:.2f} us/step)",
                f"  speedup: {speedup:.1f}x"
                f" (native kernels: {_native.available()})",
            ]
        ),
    )
    if not _native.available():
        pytest.skip(
            "no C compiler: csr backend runs its pure-Python fallback,"
            f" measured {speedup:.1f}x vs list"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"csr backend regressed: only {speedup:.1f}x faster than the"
        f" list backend (floor {SPEEDUP_FLOOR}x)"
    )


def test_vectorized_estimator_speedup(ba_graph, walker_seeds, save_result):
    """Eq. (7) reweighting over trace arrays vs the tuple loop.

    Both paths run through the same public function —
    ``degree_pmf_from_trace`` dispatches on the trace type — so this
    measures exactly what an experiment pipeline pays per estimate.
    """
    array_trace = run_csr_backend(ba_graph, walker_seeds)
    # The tuple-loop twin: identical steps, list-backed trace.  Built
    # (and its lazy tuple list materialized) outside the timings.
    tuple_trace = WalkTrace(
        method=array_trace.method,
        edges=list(array_trace.edges),
        initial_vertices=array_trace.initial_vertices,
        budget=array_trace.budget,
        seed_cost=array_trace.seed_cost,
    )

    vectorized_pmf = degree_pmf_from_trace(ba_graph, array_trace)  # warm
    tuple_pmf = degree_pmf_from_trace(ba_graph, tuple_trace)
    assert set(vectorized_pmf) == set(tuple_pmf)
    mismatch = max(
        abs(vectorized_pmf[k] - tuple_pmf[k]) for k in tuple_pmf
    )
    assert mismatch <= 1e-12, (
        f"vectorized estimator drifted from the tuple loop by {mismatch:.2e}"
    )

    def best_of(repeats, trace):
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            degree_pmf_from_trace(ba_graph, trace)
            timings.append(time.perf_counter() - started)
        return min(timings)

    tuple_seconds = best_of(3, tuple_trace)
    vectorized_seconds = best_of(5, array_trace)
    speedup = tuple_seconds / vectorized_seconds
    save_result(
        "estimator_speed",
        "\n".join(
            [
                f"degree PMF estimation ({NUM_STEPS} FS steps,"
                f" BA n={NUM_VERTICES})",
                f"  tuple loop: {tuple_seconds * 1e3:.2f} ms",
                f"  vectorized: {vectorized_seconds * 1e3:.2f} ms",
                f"  speedup: {speedup:.1f}x"
                f" (max |pmf diff|: {mismatch:.1e})",
            ]
        ),
    )
    assert speedup >= ESTIMATOR_SPEEDUP_FLOOR, (
        f"vectorized estimator regressed: only {speedup:.1f}x faster"
        f" than the tuple loop (floor {ESTIMATOR_SPEEDUP_FLOOR}x)"
    )
