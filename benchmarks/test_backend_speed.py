"""Backend speed: vectorized CSR fast path vs the interpreted walker.

Times 10^5 Frontier Sampling steps over a ~100k-node Barabasi-Albert
graph on both backends from the same pinned walker seeds, records both
into the pytest-benchmark report, and gates the regression: the CSR
backend must stay >= 5x faster than the list backend whenever the
native kernels are available (CI always has a C compiler).

The estimator layer is gated too: eq. (7) degree reweighting over the
``ArrayWalkTrace`` arrays must stay >= 10x faster than the tuple-loop
estimator on the same FS trace, and the two must agree to 1e-12 —
otherwise the walk speedup evaporates the moment anything is estimated.

``REPRO_BENCH_SCALE`` shrinks the graph and the step count together
for smoke runs (CI uses 0.05).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.estimators.degree import degree_pmf_from_trace
from repro.generators.ba import barabasi_albert
from repro.graph.csr import get_csr
from repro.sampling import _native
from repro.sampling.base import WalkTrace
from repro.sampling.frontier import FrontierSampler

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
NUM_VERTICES = max(2_000, int(100_000 * SCALE))
NUM_STEPS = max(2_000, int(100_000 * SCALE))
DIMENSION = 64
SPEEDUP_FLOOR = 5.0
ESTIMATOR_SPEEDUP_FLOOR = 10.0
#: A chunked session advance may cost at most this much of one-shot
#: sample() — the anytime protocol must not tax the kernel hot path.
SESSION_OVERHEAD_CEILING = 1.3
#: Stride scales with the step count so the gate always exercises
#: ~12 advances — a fixed stride would collapse to a single (gate-less)
#: advance at CI's reduced REPRO_BENCH_SCALE.
SESSION_CHUNKS = 12
SESSION_CHUNK = max(256, NUM_STEPS // SESSION_CHUNKS)
#: At smoke scale the walk itself takes ~0.3 ms, so fixed per-advance
#: costs (one kernel invocation, chunk bookkeeping) dominate any ratio;
#: there the gate bounds the absolute overhead per advance instead.
PER_ADVANCE_OVERHEAD_CEILING = 150e-6  # seconds


@pytest.fixture(scope="module")
def ba_graph():
    graph = barabasi_albert(NUM_VERTICES, 3, rng=1)
    get_csr(graph)  # pay the one-off CSR conversion outside the timings
    return graph


@pytest.fixture(scope="module")
def walker_seeds():
    picker = random.Random(3)
    return [picker.randrange(NUM_VERTICES) for _ in range(DIMENSION)]


def run_list_backend(graph, seeds):
    sampler = FrontierSampler(DIMENSION, backend="list")
    return sampler.sample_from(graph, seeds, NUM_STEPS, rng=7)


def run_csr_backend(graph, seeds):
    sampler = FrontierSampler(DIMENSION, backend="csr")
    return sampler.sample_from(get_csr(graph), seeds, NUM_STEPS, rng=7)


def run_csr_session(graph, seeds):
    """The same walk, advanced through a session in array-sized strides."""
    sampler = FrontierSampler(DIMENSION, backend="csr")
    session = sampler.start(get_csr(graph), rng=7, initial_vertices=seeds)
    remaining = NUM_STEPS
    while remaining:
        stride = min(SESSION_CHUNK, remaining)
        session.advance(stride)
        remaining -= stride
    return session.trace()


def test_fs_list_backend(benchmark, ba_graph, walker_seeds):
    trace = benchmark.pedantic(
        run_list_backend, args=(ba_graph, walker_seeds), rounds=2,
        iterations=1,
    )
    assert trace.num_steps == NUM_STEPS


def test_fs_csr_backend(benchmark, ba_graph, walker_seeds):
    trace = benchmark.pedantic(
        run_csr_backend, args=(ba_graph, walker_seeds), rounds=5,
        iterations=1,
    )
    assert trace.num_steps == NUM_STEPS


def test_csr_backend_speedup(ba_graph, walker_seeds, save_result):
    def best_of(repeats, fn):
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn(ba_graph, walker_seeds)
            timings.append(time.perf_counter() - started)
        return min(timings)

    list_seconds = best_of(2, run_list_backend)
    csr_seconds = best_of(5, run_csr_backend)
    speedup = list_seconds / csr_seconds
    per_step = 1e6 / NUM_STEPS
    save_result(
        "backend_speed",
        "\n".join(
            [
                f"FS backend speed ({NUM_STEPS} steps, m={DIMENSION},"
                f" BA n={NUM_VERTICES})",
                f"  list backend: {list_seconds:.3f}s"
                f" ({list_seconds * per_step:.2f} us/step)",
                f"  csr backend:  {csr_seconds:.3f}s"
                f" ({csr_seconds * per_step:.2f} us/step)",
                f"  speedup: {speedup:.1f}x"
                f" (native kernels: {_native.available()})",
            ]
        ),
    )
    if not _native.available():
        pytest.skip(
            "no C compiler: csr backend runs its pure-Python fallback,"
            f" measured {speedup:.1f}x vs list"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"csr backend regressed: only {speedup:.1f}x faster than the"
        f" list backend (floor {SPEEDUP_FLOOR}x)"
    )


def test_fs_session_overhead(benchmark, ba_graph, walker_seeds, save_result):
    """Chunked session advance vs one-shot sample on the same FS walk.

    The incremental protocol (seed once, then ``advance`` in
    ``SESSION_CHUNK``-step strides, then materialize the trace) must
    stay within ``SESSION_OVERHEAD_CEILING`` of the single-kernel-call
    path — and, the draw protocol being chunking-invariant, produce the
    bit-identical trace.
    """
    session_trace = run_csr_session(ba_graph, walker_seeds)
    one_shot_trace = run_csr_backend(ba_graph, walker_seeds)
    assert session_trace.num_steps == NUM_STEPS
    assert (
        session_trace.step_sources == one_shot_trace.step_sources
    ).all()
    assert (
        session_trace.step_targets == one_shot_trace.step_targets
    ).all()
    assert (
        session_trace.step_walkers == one_shot_trace.step_walkers
    ).all()

    def best_of(repeats, fn):
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn(ba_graph, walker_seeds)
            timings.append(time.perf_counter() - started)
        return min(timings)

    benchmark.pedantic(
        run_csr_session, args=(ba_graph, walker_seeds), rounds=3,
        iterations=1,
    )
    one_shot_seconds = best_of(5, run_csr_backend)
    session_seconds = best_of(5, run_csr_session)
    overhead = session_seconds / one_shot_seconds
    chunks = -(-NUM_STEPS // SESSION_CHUNK)
    per_advance = max(0.0, session_seconds - one_shot_seconds) / chunks
    save_result(
        "session_overhead",
        "\n".join(
            [
                f"FS session overhead ({NUM_STEPS} steps, m={DIMENSION},"
                f" chunk={SESSION_CHUNK} x{chunks}, BA n={NUM_VERTICES})",
                f"  one-shot sample(): {one_shot_seconds * 1e3:.2f} ms",
                f"  chunked session:   {session_seconds * 1e3:.2f} ms",
                f"  overhead: {overhead:.2f}x"
                f" (ceiling {SESSION_OVERHEAD_CEILING}x)"
                f" / {per_advance * 1e6:.0f} us per advance"
                f" (ceiling {PER_ADVANCE_OVERHEAD_CEILING * 1e6:.0f} us)",
            ]
        ),
    )
    # At full scale the relative ceiling bites; at smoke scale the walk
    # is so short that only the absolute per-advance bound is
    # meaningful.  A regression must clear BOTH to ship.
    assert (
        overhead <= SESSION_OVERHEAD_CEILING
        or per_advance <= PER_ADVANCE_OVERHEAD_CEILING
    ), (
        f"chunked session advance costs {overhead:.2f}x one-shot"
        f" sample() (ceiling {SESSION_OVERHEAD_CEILING}x) and"
        f" {per_advance * 1e6:.0f} us per advance (ceiling"
        f" {PER_ADVANCE_OVERHEAD_CEILING * 1e6:.0f} us)"
    )


def test_vectorized_estimator_speedup(ba_graph, walker_seeds, save_result):
    """Eq. (7) reweighting over trace arrays vs the tuple loop.

    Both paths run through the same public function —
    ``degree_pmf_from_trace`` dispatches on the trace type — so this
    measures exactly what an experiment pipeline pays per estimate.
    """
    array_trace = run_csr_backend(ba_graph, walker_seeds)
    # The tuple-loop twin: identical steps, list-backed trace.  Built
    # (and its lazy tuple list materialized) outside the timings.
    tuple_trace = WalkTrace(
        method=array_trace.method,
        edges=list(array_trace.edges),
        initial_vertices=array_trace.initial_vertices,
        budget=array_trace.budget,
        seed_cost=array_trace.seed_cost,
    )

    vectorized_pmf = degree_pmf_from_trace(ba_graph, array_trace)  # warm
    tuple_pmf = degree_pmf_from_trace(ba_graph, tuple_trace)
    assert set(vectorized_pmf) == set(tuple_pmf)
    mismatch = max(
        abs(vectorized_pmf[k] - tuple_pmf[k]) for k in tuple_pmf
    )
    assert mismatch <= 1e-12, (
        f"vectorized estimator drifted from the tuple loop by {mismatch:.2e}"
    )

    def best_of(repeats, trace):
        timings = []
        for _ in range(repeats):
            started = time.perf_counter()
            degree_pmf_from_trace(ba_graph, trace)
            timings.append(time.perf_counter() - started)
        return min(timings)

    tuple_seconds = best_of(3, tuple_trace)
    vectorized_seconds = best_of(5, array_trace)
    speedup = tuple_seconds / vectorized_seconds
    save_result(
        "estimator_speed",
        "\n".join(
            [
                f"degree PMF estimation ({NUM_STEPS} FS steps,"
                f" BA n={NUM_VERTICES})",
                f"  tuple loop: {tuple_seconds * 1e3:.2f} ms",
                f"  vectorized: {vectorized_seconds * 1e3:.2f} ms",
                f"  speedup: {speedup:.1f}x"
                f" (max |pmf diff|: {mismatch:.1e})",
            ]
        ),
    )
    assert speedup >= ESTIMATOR_SPEEDUP_FLOOR, (
        f"vectorized estimator regressed: only {speedup:.1f}x faster"
        f" than the tuple loop (floor {ESTIMATOR_SPEEDUP_FLOOR}x)"
    )
