"""Figure 8 — out-degree CNMSE on LiveJournal-like."""

from conftest import run_once

from repro.experiments.figures import fig8


def test_fig8(benchmark, save_result):
    result = run_once(benchmark, fig8, scale=0.2, runs=40, dimension=50)
    save_result("fig08", result.render())
    fs = "FS(m=50)"
    # FS at least matches the best baseline overall and wins at small
    # out-degrees (where the paper reports up to an order of magnitude).
    assert result.mean_error(fs) <= 1.15 * min(
        result.mean_error("SingleRW"),
        result.mean_error("MultipleRW(m=50)"),
    )
    small_degrees = [
        k for k in result.curves[fs] if k <= result.average_degree
    ]
    fs_small = sum(result.curves[fs][k] for k in small_degrees)
    single_small = sum(
        result.curves["SingleRW"].get(k, 0.0) for k in small_degrees
    )
    assert fs_small <= single_small
