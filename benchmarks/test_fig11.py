"""Figure 11 — baselines seeded in steady state catch up with FS."""

from conftest import run_once

from repro.experiments.figures import fig11


def test_fig11(benchmark, save_result):
    result = run_once(benchmark, fig11, scale=0.25, runs=40, dimension=50)
    save_result("fig11", result.render())
    fs = "FS(m=50)"
    stationary_multiple = "MultipleRW(stationary,m=50)"
    # Stationary-seeded MultipleRW and uniformly seeded FS are now
    # comparable (Section 6.3's conclusion).
    assert result.mean_error(stationary_multiple) < 1.5 * result.mean_error(
        fs
    )
    assert result.mean_error(fs) < 1.5 * result.mean_error(
        stationary_multiple
    )
