"""Figure 3 — Flickr-like in-degree CCDF (descriptive)."""

from conftest import run_once

from repro.experiments.figures import fig3


def test_fig3(benchmark, save_result):
    result = run_once(benchmark, fig3, scale=0.4)
    save_result("fig03", result.render())
    ccdf = result.ccdf
    # Heavy tail: mass extends far beyond the mean on a log scale.
    assert max(ccdf) > 30
    assert ccdf[0] > 0.8  # almost every vertex has in-degree >= 1
    keys = sorted(ccdf)
    assert all(ccdf[a] >= ccdf[b] for a, b in zip(keys, keys[1:]))
