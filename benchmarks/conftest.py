"""Benchmark fixtures.

Every benchmark regenerates one paper artifact (table or figure) at a
reduced scale, times it with pytest-benchmark, asserts the paper's
qualitative claim, and writes the rendered rows/series to
``results/<artifact>.txt`` so the regenerated evaluation is inspectable
after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write an artifact's rendered output to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (experiments are heavy Monte Carlo)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
