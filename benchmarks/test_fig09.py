"""Figure 9 — sample paths of theta_hat_10 on GAB."""

from conftest import run_once

from repro.experiments.figures import fig9


def test_fig9(benchmark, save_result):
    result = run_once(
        benchmark, fig9, scale=0.3, dimension=50, num_paths=4
    )
    save_result("fig09", result.render())
    truth = result.true_value
    assert truth > 0
    # FS converges on every path; SingleRW paths (stuck on one side of
    # the bridge) spread far more.
    fs_spread = max(abs(v - truth) for v in result.final_values("FS"))
    single_spread = max(
        abs(v - truth) for v in result.final_values("SingleRW")
    )
    assert fs_spread < single_spread
