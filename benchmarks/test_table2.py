"""Table 2 — assortativity bias/NMSE: FS vs MultipleRW vs SingleRW."""

from conftest import run_once

from repro.experiments.tables import table2


def test_table2(benchmark, save_result):
    result = run_once(
        benchmark, table2, scale=0.12, runs=25, dimension=30
    )
    save_result("table2", result.render())
    assert len(result.rows) == 5
    gab_row = next(r for r in result.rows if r.graph_name == "gab")
    # The paper's extreme case: on GAB, SingleRW collapses to estimating
    # one side's (near-zero) assortativity while FS stays accurate.
    assert gab_row.error["FS"] < gab_row.error["SingleRW"]
    assert gab_row.error["FS"] < gab_row.error["MultipleRW"]
    # FS wins on average across graphs (Table 2's overall story).
    def total(method):
        return sum(
            row.error[method]
            for row in result.rows
            if row.error[method] == row.error[method]  # skip NaN
        )

    assert total("FS") < total("SingleRW")
    assert total("FS") < total("MultipleRW")
